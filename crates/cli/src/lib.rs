//! Command implementations for the `coolair` CLI.
//!
//! The binary (`src/main.rs`) is a thin argument parser over these
//! functions, which are kept in a library so the command logic is unit
//! testable. Each command returns its report as a `String` (the binary
//! prints it), and errors are plain messages.

#![warn(missing_docs)]

pub mod reporter;

use std::fmt::Write as _;

use coolair::{train_cooling_model, CoolingModel, TrainingConfig, Version};
use coolair_runner::{Executor, ExecutorConfig};
use coolair_sim::jobs::KIND_COOLING_MODEL;
use coolair_sim::{
    disk_reliability, model_error_cdfs, run_annual_with_model, run_days_traced, sweep_locations,
    sweep_one, train_for_location, AnnualConfig, FaultPlan, FaultRates, ReliabilityParams,
    SystemSpec,
};
use coolair_fleet::{
    fleet_lane_jobs, run_fleet_with, FleetOutcome, FleetSpec, KIND_FLEET_REPORT,
};
use coolair_learn::{run_learn_with, LearnOutcome, LearnSpec, KIND_LEARN_REPORT};
use coolair_telemetry::{Telemetry, TraceRecord};
use coolair_tune::{run_tune_with, TuneOutcome, TuneSpec, KIND_TUNE_REPORT};
use coolair_weather::{shard_locations, world_locations, Location, TmySeries, WorldGrid};
use coolair_workload::TraceKind;

use reporter::Table;

/// A CLI-level error: a message for the user.
pub type CliError = String;

/// Parses a location name.
///
/// # Errors
///
/// Returns an error listing the known locations when `name` is unknown.
pub fn parse_location(name: &str) -> Result<Location, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "newark" => Ok(Location::newark()),
        "chad" => Ok(Location::chad()),
        "santiago" => Ok(Location::santiago()),
        "iceland" => Ok(Location::iceland()),
        "singapore" => Ok(Location::singapore()),
        "phoenix" => Ok(Location::phoenix()),
        "london" => Ok(Location::london()),
        "tokyo" => Ok(Location::tokyo()),
        "sydney" => Ok(Location::sydney()),
        "moscow" => Ok(Location::moscow()),
        "nairobi" => Ok(Location::nairobi()),
        other => Err(format!(
            "unknown location '{other}' (known: newark, chad, santiago, iceland, singapore, \
             phoenix, london, tokyo, sydney, moscow, nairobi)"
        )),
    }
}

/// Parses a system name. A `+sv` suffix (e.g. `allnd+sv`) wraps the CoolAir
/// version in the degraded-mode supervisor.
///
/// # Errors
///
/// Returns an error listing the known systems when `name` is unknown.
pub fn parse_system(name: &str) -> Result<SystemSpec, CliError> {
    let lower = name.to_ascii_lowercase();
    if let Some(base) = lower.strip_suffix("+sv") {
        return match parse_system(base)? {
            SystemSpec::CoolAir(v) => Ok(SystemSpec::Supervised(v)),
            _ => Err(format!("'{name}': only CoolAir versions can be supervised")),
        };
    }
    match lower.as_str() {
        "baseline" => Ok(SystemSpec::Baseline),
        "temperature" => Ok(SystemSpec::CoolAir(Version::Temperature)),
        "variation" => Ok(SystemSpec::CoolAir(Version::Variation)),
        "energy" => Ok(SystemSpec::CoolAir(Version::Energy)),
        "allnd" | "all-nd" => Ok(SystemSpec::CoolAir(Version::AllNd)),
        "alldef" | "all-def" => Ok(SystemSpec::CoolAir(Version::AllDef)),
        "energydef" | "energy-def" => Ok(SystemSpec::CoolAir(Version::EnergyDef)),
        other => Err(format!(
            "unknown system '{other}' (known: baseline, temperature, variation, energy, allnd, alldef, energydef; append +sv for the supervised variant)"
        )),
    }
}

/// Parses a trace name.
///
/// # Errors
///
/// Returns an error when `name` is neither `facebook` nor `nutch`.
pub fn parse_trace(name: &str) -> Result<TraceKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "facebook" | "fb" => Ok(TraceKind::Facebook),
        "nutch" => Ok(TraceKind::Nutch),
        other => Err(format!("unknown trace '{other}' (known: facebook, nutch)")),
    }
}

/// `coolair locations` — list the built-in study locations and a sample of
/// the world grid.
#[must_use]
pub fn cmd_locations() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:<12} {:>8} {:>9} {:>10} {:>10}", "name", "lat", "lon", "mean °C", "season ±");
    for l in Location::extended_set() {
        let c = l.climate();
        let _ = writeln!(
            out,
            "{:<12} {:>8.1} {:>9.1} {:>10.1} {:>10.1}",
            l.name(),
            l.latitude(),
            l.longitude(),
            c.mean_temp,
            c.seasonal_amplitude
        );
    }
    let grid = WorldGrid::generate();
    let _ = writeln!(out, "\nworld grid: {} locations (use `coolair compare`)", grid.len());
    out
}

/// `coolair train` — run the §4.2 data-collection campaign and save the
/// learned Cooling Model as JSON.
///
/// # Errors
///
/// Propagates location parsing and file I/O errors.
pub fn cmd_train(location: &str, days: u64, out_path: &str) -> Result<String, CliError> {
    let location = parse_location(location)?;
    let tmy = TmySeries::generate(&location, 42);
    let model = train_cooling_model(&tmy, &TrainingConfig { days, ..TrainingConfig::default() });
    let json = serde_json::to_vec_pretty(&model).map_err(|e| format!("serialise model: {e}"))?;
    std::fs::write(out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    Ok(format!(
        "trained on {days} days at {}: {} regime/transition models, ranking {:?}\nsaved to {out_path} ({} bytes)",
        location.name(),
        model.keys().count(),
        model.recirc_ranking(),
        json.len()
    ))
}

/// Loads a model saved by [`cmd_train`].
///
/// # Errors
///
/// Propagates file and JSON errors.
pub fn load_model(path: &str) -> Result<CoolingModel, CliError> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("parse {path}: {e}"))
}

/// `coolair annual` — run one system for a (sub-sampled) year and print the
/// summary.
///
/// # Errors
///
/// Propagates parsing errors.
pub fn cmd_annual(
    location: &str,
    system: &str,
    trace: &str,
    stride: u64,
    model_path: Option<&str>,
) -> Result<String, CliError> {
    let location = parse_location(location)?;
    let system = parse_system(system)?;
    let trace = parse_trace(trace)?;
    let mut cfg = AnnualConfig { stride: stride.max(1), ..AnnualConfig::default() };
    if let SystemSpec::CoolAir(v) | SystemSpec::Supervised(v) = &system {
        cfg.deferrable = v.is_deferrable();
    }
    let model = match (&system, model_path) {
        (SystemSpec::Baseline | SystemSpec::BaselineWithSetpoint(_), _) => None,
        (_, Some(path)) => Some(load_model(path)?),
        (_, None) => Some(train_for_location(&location, &cfg)),
    };
    let summary = run_annual_with_model(&system, &location, trace, &cfg, model);
    let reliability = disk_reliability(&summary, &ReliabilityParams::default());

    let mut out = String::new();
    let _ = writeln!(out, "{} @ {} ({} sampled days)", system.name(), location.name(), summary.len());
    let _ = writeln!(out, "  avg violation        {:>8.3} °C", summary.avg_violation());
    let _ = writeln!(
        out,
        "  daily range          {:>8.1} °C avg  [{:.1} .. {:.1}]",
        summary.avg_worst_range(),
        summary.min_worst_range(),
        summary.max_worst_range()
    );
    let _ = writeln!(out, "  PUE                  {:>8.3}", summary.pue());
    let _ = writeln!(
        out,
        "  energy               {:>8.1} kWh cooling / {:.1} kWh IT",
        summary.cooling_kwh(),
        summary.it_kwh()
    );
    let _ = writeln!(out, "  max rate observed    {:>8.1} °C/h", summary.max_rate());
    let _ = writeln!(out, "  jobs completed       {:>8}", summary.jobs_completed());
    let _ = writeln!(
        out,
        "  disk failure factor  {:>8.2}x (Arrhenius {:.2} × variation {:.2})",
        reliability.combined_factor,
        reliability.arrhenius_factor,
        reliability.variation_factor
    );
    if matches!(system, SystemSpec::Supervised(_)) {
        let _ = writeln!(
            out,
            "  supervisor           {:>8} min degraded / {} min failsafe / {} transitions",
            summary.degraded_minutes(),
            summary.failsafe_minutes(),
            summary.fallback_transitions()
        );
    }
    Ok(out)
}

/// `coolair faults` — the resilience experiment: Baseline vs All-ND vs
/// supervised All-ND under a seeded fault plan at one severity. Renders
/// through the shared [`reporter::Table`], the same output path every other
/// report uses.
///
/// # Errors
///
/// Propagates parsing errors.
pub fn cmd_faults(location: &str, seed: u64, severity: f64, stride: u64) -> Result<String, CliError> {
    let location = parse_location(location)?;
    let cfg = AnnualConfig { stride: stride.max(1), ..AnnualConfig::default() };
    let plan = FaultPlan::random(seed, &FaultRates::scaled(severity), &cfg.sampled_days(), 4);
    let windows = plan.windows().len();
    let cfg = AnnualConfig { faults: plan, ..cfg };
    let model = train_for_location(&location, &cfg);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault drill @ {} (seed {seed}, severity {severity}, {windows} fault windows, {} sampled days)",
        location.name(),
        cfg.sampled_days().len()
    );
    let mut table = Table::new(&[
        "system",
        "violation °C·min",
        "PUE",
        "fault min",
        "degraded min",
        "failsafe min",
    ]);
    for system in [
        SystemSpec::Baseline,
        SystemSpec::CoolAir(Version::AllNd),
        SystemSpec::Supervised(Version::AllNd),
    ] {
        let m = (!matches!(system, SystemSpec::Baseline)).then(|| model.clone());
        let s = run_annual_with_model(&system, &location, TraceKind::Facebook, &cfg, m);
        table.row(&[
            system.name(),
            format!("{:.0}", s.total_violation()),
            format!("{:.3}", s.pue()),
            s.fault_minutes().to_string(),
            s.degraded_minutes().to_string(),
            s.failsafe_minutes().to_string(),
        ]);
    }
    out.push_str(&table.render());
    Ok(out)
}

/// `coolair run` — simulate one or more specific calendar days with the
/// telemetry bus attached, optionally streaming the event trace as JSONL.
///
/// # Errors
///
/// Propagates parsing and file I/O errors.
pub fn cmd_run(
    location: &str,
    system: &str,
    trace_kind: &str,
    day: u64,
    num_days: u64,
    trace_path: Option<&str>,
) -> Result<String, CliError> {
    let location = parse_location(location)?;
    let system = parse_system(system)?;
    let trace_kind = parse_trace(trace_kind)?;
    // One traced day should not require a 45-day training campaign first.
    let mut cfg = AnnualConfig { training: TrainingConfig::quick(), ..AnnualConfig::default() };
    if let SystemSpec::CoolAir(v) | SystemSpec::Supervised(v) = &system {
        cfg.deferrable = v.is_deferrable();
    }
    let model = match &system {
        SystemSpec::Baseline | SystemSpec::BaselineWithSetpoint(_) => None,
        _ => Some(train_for_location(&location, &cfg)),
    };
    let telemetry = match trace_path {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            Telemetry::writer(std::io::BufWriter::new(file))
        }
        None => Telemetry::discard(),
    };
    let days: Vec<u64> = (0..num_days.max(1)).map(|i| (day + i) % 365).collect();
    let summary =
        run_days_traced(&system, &location, trace_kind, &cfg, model, &days, telemetry.clone());
    telemetry.finish();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} @ {}: {} day(s) from day {day}",
        system.name(),
        location.name(),
        days.len()
    );
    let _ = writeln!(
        out,
        "  violation {:.0} °C·min, PUE {:.3}, {:.1} kWh cooling / {:.1} kWh IT",
        summary.total_violation(),
        summary.pue(),
        summary.cooling_kwh(),
        summary.it_kwh()
    );
    out.push_str(&reporter::render_scalar_metrics(&telemetry.metrics()));
    let profile = reporter::render_profile(&telemetry.profile());
    if !profile.is_empty() {
        out.push_str(&profile);
    }
    if let Some(path) = trace_path {
        let _ = writeln!(out, "trace written to {path} (render with `coolair report {path}`)");
    }
    Ok(out)
}

/// A report-path failure that keeps the *missing* / *corrupt* distinction
/// a service or script needs: a missing trace is the caller's mistake
/// (exit [`EXIT_NOT_FOUND`], HTTP 404), a corrupt one is the producer's
/// (exit [`EXIT_CORRUPT`], HTTP 500).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The trace file does not exist.
    Missing(String),
    /// The trace file exists but cannot be read or parsed.
    Corrupt(String),
}

/// Exit code when a requested input file does not exist.
pub const EXIT_NOT_FOUND: u8 = 2;
/// Exit code when a requested input file exists but is corrupt.
pub const EXIT_CORRUPT: u8 = 3;

impl ReportError {
    /// The process exit code this error maps to.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            ReportError::Missing(_) => EXIT_NOT_FOUND,
            ReportError::Corrupt(_) => EXIT_CORRUPT,
        }
    }

    /// The user-facing message.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            ReportError::Missing(m) | ReportError::Corrupt(m) => m,
        }
    }
}

/// `coolair report` — render a run summary from a `.jsonl` trace file
/// written by `run --trace` (event counts, timeline, histograms, profile),
/// or the robust-vs-nominal comparison from a tune outcome written by
/// `tune --out`.
///
/// # Errors
///
/// [`ReportError::Missing`] when the trace file does not exist;
/// [`ReportError::Corrupt`] for unreadable files, malformed trace lines,
/// and empty traces.
pub fn cmd_report(path: &str) -> Result<String, ReportError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            ReportError::Missing(format!("{path}: no such trace file"))
        } else {
            ReportError::Corrupt(format!("read {path}: {e}"))
        }
    })?;
    // A tune outcome is one pretty-printed JSON document spanning many
    // lines, so it can never parse as a JSONL trace — try it first.
    if let Ok(outcome) = serde_json::from_str::<TuneOutcome>(&text) {
        return Ok(reporter::render_tune(&outcome));
    }
    // Same story for a fleet outcome written by `coolair fleet --out`.
    if let Ok(outcome) = serde_json::from_str::<FleetOutcome>(&text) {
        return Ok(reporter::render_fleet(&outcome));
    }
    // And for a learn outcome written by `coolair learn --out` (or fetched
    // from the daemon's `learn-report` artifact kind).
    if let Ok(outcome) = serde_json::from_str::<LearnOutcome>(&text) {
        return Ok(reporter::render_learn(&outcome));
    }
    let mut records: Vec<TraceRecord> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = serde_json::from_str(line)
            .map_err(|e| ReportError::Corrupt(format!("{path}:{}: bad trace record: {e}", i + 1)))?;
        records.push(record);
    }
    if records.is_empty() {
        return Err(ReportError::Corrupt(format!("{path}: empty trace")));
    }
    Ok(reporter::render_records(&records))
}

/// Arguments for `coolair serve`.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Bind address (port 0 picks a free port).
    pub addr: String,
    /// Job worker threads.
    pub threads: usize,
    /// Work-queue bound (submissions beyond it get `503 Retry-After`).
    pub queue_depth: usize,
    /// Concurrent-connection bound.
    pub max_connections: usize,
    /// Epoll event loops / listener shards (0 → sized to the machine).
    pub event_loops: usize,
    /// Artifact store + journal directory; in-memory when absent.
    pub store: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let cfg = coolair_serve::ServeConfig::default();
        ServeArgs {
            addr: cfg.addr,
            threads: cfg.job_threads,
            queue_depth: cfg.queue_depth,
            max_connections: cfg.max_connections,
            event_loops: cfg.event_loops,
            store: None,
        }
    }
}

/// `coolair serve` — run the control-plane daemon until drained.
///
/// Blocks the calling thread; prints the bound address up front (the
/// caller may pass port 0) and returns a drain summary after
/// `POST /shutdown` completes.
///
/// # Errors
///
/// Bind and store I/O failures, and accept-loop errors.
pub fn cmd_serve(args: &ServeArgs) -> Result<String, CliError> {
    let cfg = coolair_serve::ServeConfig {
        addr: args.addr.clone(),
        job_threads: args.threads.max(1),
        queue_depth: args.queue_depth.max(1),
        max_connections: args.max_connections.max(1),
        event_loops: args.event_loops,
        store_dir: args.store.clone().map(std::path::PathBuf::from),
        ..coolair_serve::ServeConfig::default()
    };
    // Discard events but keep the metrics registry: a long-running daemon
    // must not buffer an unbounded event log in memory.
    let telemetry = Telemetry::discard();
    let server = coolair_serve::Server::bind(cfg, telemetry.clone())
        .map_err(|e| format!("bind {}: {e}", args.addr))?;
    let local = server.local_addr().map_err(|e| format!("local addr: {e}"))?;
    println!("coolair-serve listening on http://{local}");
    server.run().map_err(|e| format!("serve: {e}"))?;
    let metrics = telemetry.metrics();
    let requests: u64 = metrics
        .snapshot()
        .filter(|s| s.name.starts_with("serve.requests{"))
        .map(|s| match s.value {
            coolair_telemetry::MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum();
    Ok(format!("drained cleanly after {requests} requests\n"))
}

/// `coolair validate` — held-out model accuracy (the Figure 5 gates).
///
/// # Errors
///
/// Propagates parsing errors.
pub fn cmd_validate(location: &str, model_path: Option<&str>) -> Result<String, CliError> {
    let location = parse_location(location)?;
    let tmy = TmySeries::generate(&location, 42);
    let model = match model_path {
        Some(path) => load_model(path)?,
        None => train_cooling_model(&tmy, &TrainingConfig::default()),
    };
    let report = model_error_cdfs(&model, &tmy, &[121, 171], 9);
    let mut out = String::new();
    let _ = writeln!(out, "held-out model accuracy at {} (days 121, 171):", location.name());
    let _ = writeln!(
        out,
        "  2-min  within 1°C: {:>5.1}% (no transitions: {:.1}%)",
        report.two_min.fraction_within(1.0) * 100.0,
        report.two_min_no_transition.fraction_within(1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "  10-min within 1°C: {:>5.1}% (no transitions: {:.1}%)",
        report.ten_min.fraction_within(1.0) * 100.0,
        report.ten_min_no_transition.fraction_within(1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "  humidity within 5%RH: {:>5.1}%",
        report.humidity.fraction_within(5.0) * 100.0
    );
    Ok(out)
}

/// `coolair compare` — baseline vs All-ND at one of the world-grid or named
/// locations (one row of the Figure 12/13 sweep).
///
/// # Errors
///
/// Propagates parsing errors.
pub fn cmd_compare(location: &str, stride: u64) -> Result<String, CliError> {
    let location = parse_location(location)?;
    let cfg = AnnualConfig { stride: stride.max(1), ..AnnualConfig::default() };
    let point = sweep_one(&location, &cfg);
    Ok(format!(
        "{}: max daily range {:.1} -> {:.1} °C ({:+.1}), PUE {:.3} -> {:.3} ({:+.3})",
        location.name(),
        point.baseline_max_range,
        point.coolair_max_range,
        -point.range_reduction(),
        point.baseline_pue,
        point.coolair_pue,
        -point.pue_reduction(),
    ))
}

/// Arguments of `coolair sweep`.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// World-grid size (the paper's full sweep is 1520).
    pub locations: usize,
    /// Day stride of the annual sub-sampling.
    pub stride: u64,
    /// Training-campaign length per location, days.
    pub training_days: u64,
    /// Worker threads (0 → available parallelism).
    pub threads: usize,
    /// Store directory for the artifact cache and journal; `None` runs in
    /// memory (no caching, no resume).
    pub store: Option<String>,
    /// Replay the store's journal instead of starting a fresh one.
    pub resume: bool,
    /// `(k, n)`: run only the k-th of n interleaved grid shards (1-based).
    pub shard: Option<(usize, usize)>,
    /// Write the merged `WorldPoint` list to this path as pretty JSON.
    pub out: Option<String>,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            locations: 60,
            stride: 60,
            training_days: 10,
            threads: 0,
            store: None,
            resume: false,
            shard: None,
            out: None,
        }
    }
}

/// Parses a `--shard k/n` value (1-based, e.g. `2/4`).
///
/// # Errors
///
/// Returns an error unless `1 <= k <= n`.
pub fn parse_shard(value: &str) -> Result<(usize, usize), CliError> {
    let err = || format!("--shard wants k/n with 1 <= k <= n, got '{value}'");
    let (k, n) = value.split_once('/').ok_or_else(err)?;
    let k: usize = k.trim().parse().map_err(|_| err())?;
    let n: usize = n.trim().parse().map_err(|_| err())?;
    if k >= 1 && k <= n {
        Ok((k, n))
    } else {
        Err(err())
    }
}

/// `coolair sweep` — the Figure 12/13 world sweep on the `coolair-runner`
/// executor: resumable via `--store`/`--resume`, shardable across machines
/// via `--shard k/n`, with queue-style progress output.
///
/// # Errors
///
/// Propagates store I/O errors, and reports failed shards as an error
/// after printing the partial report.
pub fn cmd_sweep(args: &SweepArgs) -> Result<String, CliError> {
    let annual = AnnualConfig {
        stride: args.stride.max(1),
        training: TrainingConfig { days: args.training_days.max(1), ..TrainingConfig::default() },
        ..AnnualConfig::default()
    };
    let grid = world_locations(args.locations);
    let (k, n) = args.shard.unwrap_or((1, 1));
    let selected = shard_locations(&grid, k, n);

    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: args.threads,
        store_dir: args.store.as_ref().map(std::path::PathBuf::from),
        resume: args.resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .map_err(|e| format!("open store: {e}"))?;

    let started = std::time::Instant::now();
    let report = sweep_locations(&selected, &annual, &exec);
    let elapsed = started.elapsed();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep: {} of {} grid locations (shard {k}/{n}), stride {}, {} training days, {} threads",
        selected.len(),
        grid.len(),
        annual.stride,
        annual.training.days,
        exec.threads()
    );
    out.push_str(&reporter::render_progress(&exec.progress()));
    let trained = telemetry.metrics().counter(&format!("runner.run.{KIND_COOLING_MODEL}"));
    let _ = writeln!(out, "training jobs executed: {trained}");
    let _ = writeln!(out, "wall clock: {:.2} s", elapsed.as_secs_f64());

    if let Some(path) = &args.out {
        let json = serde_json::to_vec_pretty(&report.points)
            .map_err(|e| format!("serialise points: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "{} points written to {path}", report.points.len());
    }

    if report.failures.is_empty() {
        Ok(out)
    } else {
        let _ = writeln!(out, "\nfailed locations:");
        for (name, error) in &report.failures {
            let _ = writeln!(out, "  {name}: {error}");
        }
        Err(out)
    }
}

/// Arguments of `coolair tune`.
#[derive(Debug, Clone)]
pub struct TuneArgs {
    /// Master seed (all search and scenario entropy derives from it).
    pub seed: u64,
    /// Use the tiny CI smoke spec instead of the shipped suite.
    pub smoke: bool,
    /// Override the spec's decomposition-round budget.
    pub rounds: Option<usize>,
    /// Override the spec's local-search proposals per round.
    pub iters: Option<usize>,
    /// Worker threads (0 → available parallelism).
    pub threads: usize,
    /// Store directory for memoized evaluations and the report artifact;
    /// `None` runs in memory (no caching, no resume).
    pub store: Option<String>,
    /// Replay the store's journal instead of starting a fresh one.
    pub resume: bool,
    /// Write the full [`TuneOutcome`] to this path as pretty JSON
    /// (renderable later with `coolair report`).
    pub out: Option<String>,
}

impl Default for TuneArgs {
    fn default() -> Self {
        TuneArgs {
            seed: 7,
            smoke: false,
            rounds: None,
            iters: None,
            threads: 0,
            store: None,
            resume: false,
            out: None,
        }
    }
}

/// `coolair tune` — worst-case-robust controller tuning via adversarial
/// scenario decomposition. Prints the robust-vs-nominal comparison and
/// persists the report artifact under `tune-report/<spec-digest>` when a
/// store is given.
///
/// # Errors
///
/// Propagates store and output-file I/O errors.
pub fn cmd_tune(args: &TuneArgs) -> Result<String, CliError> {
    let mut spec = if args.smoke { TuneSpec::smoke(args.seed) } else { TuneSpec::shipped(args.seed) };
    if let Some(rounds) = args.rounds {
        spec.rounds = rounds.max(1);
    }
    if let Some(iters) = args.iters {
        spec.iters = iters.max(1);
    }
    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: args.threads,
        store_dir: args.store.as_ref().map(std::path::PathBuf::from),
        resume: args.resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .map_err(|e| format!("open store: {e}"))?;

    let started = std::time::Instant::now();
    let outcome = run_tune_with(&spec, &exec, &telemetry);
    let elapsed = started.elapsed();

    if let Some(store) = exec.store() {
        store
            .put(KIND_TUNE_REPORT, spec.digest(), &outcome)
            .map_err(|e| format!("store tune report: {e}"))?;
    }
    if let Some(path) = &args.out {
        let json = serde_json::to_vec_pretty(&outcome)
            .map_err(|e| format!("serialise tune outcome: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    }

    let mut out = reporter::render_tune(&outcome);
    let metrics = telemetry.metrics();
    let _ = writeln!(
        out,
        "memo: {} hits / {} misses in-process, {} store cache hits",
        metrics.counter("tune.memo.hit"),
        metrics.counter("tune.memo.miss"),
        telemetry.metrics().counter("runner.cache-hit"),
    );
    let _ = writeln!(out, "wall clock: {:.2} s", elapsed.as_secs_f64());
    if exec.store().is_some() {
        let _ = writeln!(out, "report artifact: tune-report/{}", spec.digest());
    }
    if let Some(path) = &args.out {
        let _ = writeln!(out, "outcome written to {path} (render with `coolair report {path}`)");
    }
    Ok(out)
}

/// Arguments of `coolair learn`.
#[derive(Debug, Clone)]
pub struct LearnArgs {
    /// Master seed (all training and scenario entropy derives from it).
    pub seed: u64,
    /// Use the tiny CI smoke spec instead of the shipped suite.
    pub smoke: bool,
    /// Worker threads (0 → available parallelism).
    pub threads: usize,
    /// Store directory for memoized rollouts and the report artifact;
    /// `None` runs in memory (no caching, no resume).
    pub store: Option<String>,
    /// Replay the store's journal instead of starting a fresh one.
    pub resume: bool,
    /// Write the full [`LearnOutcome`] to this path as pretty JSON
    /// (renderable later with `coolair report`).
    pub out: Option<String>,
}

impl Default for LearnArgs {
    fn default() -> Self {
        LearnArgs { seed: 7, smoke: false, threads: 0, store: None, resume: false, out: None }
    }
}

/// `coolair learn` — train the baseline learners (CEM schedule search,
/// tabular Q) over the gym-style episode suite, then benchmark them
/// head-to-head against the random floor, TKS, CoolAir-M5P, and the
/// supervisor. Every rollout is memoized in the store, so
/// `--store`/`--resume` replays a killed run byte-identically.
///
/// # Errors
///
/// Propagates spec validation and store/output I/O errors.
pub fn cmd_learn(args: &LearnArgs) -> Result<String, CliError> {
    let spec = if args.smoke { LearnSpec::smoke(args.seed) } else { LearnSpec::shipped(args.seed) };
    spec.validate().map_err(|e| format!("invalid learn spec: {e}"))?;
    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: args.threads,
        store_dir: args.store.as_ref().map(std::path::PathBuf::from),
        resume: args.resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .map_err(|e| format!("open store: {e}"))?;

    let started = std::time::Instant::now();
    let outcome = run_learn_with(&spec, &exec, &telemetry);
    let elapsed = started.elapsed();

    if let Some(store) = exec.store() {
        store
            .put(KIND_LEARN_REPORT, spec.digest(), &outcome)
            .map_err(|e| format!("store learn report: {e}"))?;
    }
    if let Some(path) = &args.out {
        let json = serde_json::to_vec_pretty(&outcome)
            .map_err(|e| format!("serialise learn outcome: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    }

    let mut out = reporter::render_learn(&outcome);
    let metrics = telemetry.metrics();
    let _ = writeln!(
        out,
        "memo: {} hits / {} misses in-process, {} store cache hits",
        metrics.counter("learn.memo.hit"),
        metrics.counter("learn.memo.miss"),
        metrics.counter("runner.cache-hit"),
    );
    let _ = writeln!(out, "wall clock: {:.2} s", elapsed.as_secs_f64());
    if exec.store().is_some() {
        let _ = writeln!(out, "report artifact: learn-report/{}", spec.digest());
    }
    if let Some(path) = &args.out {
        let _ = writeln!(out, "outcome written to {path} (render with `coolair report {path}`)");
    }
    Ok(out)
}

/// Parses a `--sites` value: either `world:N` (the first N cells of the
/// 1520-location world grid) or a comma-separated list of named locations
/// (e.g. `iceland,newark,phoenix,singapore`).
///
/// # Errors
///
/// Returns an error for malformed specs or unknown location names.
pub fn parse_sites(value: &str) -> Result<Vec<Location>, CliError> {
    if let Some(count) = value.strip_prefix("world:") {
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("--sites world:N wants a number, got '{value}'"))?;
        if count == 0 {
            return Err("--sites world:N wants N >= 1".to_string());
        }
        return Ok(world_locations(count));
    }
    let sites: Result<Vec<Location>, CliError> =
        value.split(',').map(str::trim).filter(|s| !s.is_empty()).map(parse_location).collect();
    let sites = sites?;
    if sites.is_empty() {
        return Err(format!("--sites wants at least one location, got '{value}'"));
    }
    Ok(sites)
}

/// Arguments of `coolair fleet`.
#[derive(Debug, Clone)]
pub struct FleetArgs {
    /// Placement seed.
    pub seed: u64,
    /// Use the tiny CI smoke spec instead of the shipped campaign.
    pub smoke: bool,
    /// Override the spec's container count.
    pub containers: Option<usize>,
    /// Override the spec's sites (see [`parse_sites`]).
    pub sites: Option<String>,
    /// Override the spec's decision-epoch count.
    pub epochs: Option<usize>,
    /// Worker threads (0 → available parallelism).
    pub threads: usize,
    /// Store directory for lane evaluations and the report artifact;
    /// `None` runs in memory (no caching, no resume).
    pub store: Option<String>,
    /// Replay the store's journal instead of starting a fresh one.
    pub resume: bool,
    /// Warm-up mode: run only lane jobs `k/n` of the campaign's job set
    /// into the store, skip the report (another shard or the final
    /// unsharded run aggregates from cache).
    pub shard: Option<(usize, usize)>,
    /// Write the full [`FleetOutcome`] to this path as pretty JSON
    /// (renderable later with `coolair report`).
    pub out: Option<String>,
}

impl Default for FleetArgs {
    fn default() -> Self {
        FleetArgs {
            seed: 7,
            smoke: false,
            containers: None,
            sites: None,
            epochs: None,
            threads: 0,
            store: None,
            resume: false,
            shard: None,
            out: None,
        }
    }
}

/// `coolair fleet` — the geo-distributed campus campaign: batched lane
/// stepping plus follow-the-cold migration, priced against independent
/// containers. Resumable via `--store`/`--resume`; `--shard k/n` warms a
/// slice of the lane-job set into the store and exits.
///
/// # Errors
///
/// Propagates spec validation and store/output I/O errors.
pub fn cmd_fleet(args: &FleetArgs) -> Result<String, CliError> {
    let mut spec =
        if args.smoke { FleetSpec::smoke(args.seed) } else { FleetSpec::shipped(args.seed) };
    if let Some(containers) = args.containers {
        spec.containers = containers;
    }
    if let Some(sites) = &args.sites {
        spec.sites = parse_sites(sites)?;
    }
    if let Some(epochs) = args.epochs {
        spec.epochs = epochs;
    }
    spec.validate().map_err(|e| format!("invalid fleet spec: {e}"))?;

    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: args.threads,
        store_dir: args.store.as_ref().map(std::path::PathBuf::from),
        resume: args.resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .map_err(|e| format!("open store: {e}"))?;

    let started = std::time::Instant::now();
    if let Some((k, n)) = args.shard {
        // Warm-up shard: price a deterministic slice of the campaign's
        // lane-job set into the store, no aggregation.
        if args.store.is_none() {
            return Err("--shard needs --store (shards only exist to warm a store)".to_string());
        }
        let all = fleet_lane_jobs(&spec);
        let mine: Vec<_> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i % n == k - 1)
            .map(|(_, j)| j.clone())
            .collect();
        for result in exec.run(&mine) {
            if let coolair_runner::JobResult::Failed { error, .. } = result {
                return Err(format!("lane evaluation failed: {error}"));
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet shard {k}/{n}: warmed {} of {} lane jobs (spec {})",
            mine.len(),
            all.len(),
            spec.digest()
        );
        out.push_str(&reporter::render_progress(&exec.progress()));
        let _ = writeln!(out, "wall clock: {:.2} s", started.elapsed().as_secs_f64());
        return Ok(out);
    }

    let outcome = run_fleet_with(&spec, &exec, &telemetry);
    let elapsed = started.elapsed();

    if let Some(store) = exec.store() {
        store
            .put(KIND_FLEET_REPORT, spec.digest(), &outcome)
            .map_err(|e| format!("store fleet report: {e}"))?;
    }
    if let Some(path) = &args.out {
        let json = serde_json::to_vec_pretty(&outcome)
            .map_err(|e| format!("serialise fleet outcome: {e}"))?;
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    }

    let mut out = reporter::render_fleet(&outcome);
    let _ = writeln!(
        out,
        "store cache hits: {}",
        telemetry.metrics().counter("runner.cache-hit"),
    );
    let _ = writeln!(out, "wall clock: {:.2} s", elapsed.as_secs_f64());
    if exec.store().is_some() {
        let _ = writeln!(out, "report artifact: fleet-report/{}", spec.digest());
    }
    if let Some(path) = &args.out {
        let _ = writeln!(out, "outcome written to {path} (render with `coolair report {path}`)");
    }
    Ok(out)
}

/// Usage text.
#[must_use]
pub fn usage() -> String {
    "coolair — CoolAir reproduction CLI

USAGE:
    coolair locations
    coolair train    --location <name> [--days N] --out <model.json>
    coolair annual   --location <name> --system <name> [--trace facebook|nutch]
                     [--stride N] [--model <model.json>]
    coolair validate --location <name> [--model <model.json>]
    coolair compare  --location <name> [--stride N]
    coolair sweep    [--locations N] [--stride N] [--training-days N] [--threads N]
                     [--store <dir>] [--resume] [--shard k/n] [--out <points.json>]
    coolair faults   --location <name> [--seed N] [--severity X] [--stride N]
    coolair tune     [--seed N] [--smoke] [--rounds N] [--iters N] [--threads N]
                     [--store <dir>] [--resume] [--out <outcome.json>]
    coolair run      [--location <name>] [--system <name>] [--trace-kind facebook|nutch]
                     [--day N] [--days N] [--trace <out.jsonl>]
    coolair fleet    [--seed N] [--smoke] [--containers N] [--sites world:N|a,b,c]
                     [--epochs N] [--threads N] [--store <dir>] [--resume]
                     [--shard k/n] [--out <outcome.json>]
    coolair learn    [--seed N] [--smoke] [--threads N] [--store <dir>] [--resume]
                     [--out <outcome.json>]
    coolair report   <trace.jsonl | tune/fleet/learn outcome.json>
    coolair serve    [--addr host:port] [--threads N] [--queue-depth N]
                     [--max-connections N] [--event-loops N] [--store <dir>]

SYSTEMS: baseline, temperature, variation, energy, allnd, alldef, energydef
         (append +sv for the supervised variant, e.g. allnd+sv)
LOCATIONS: newark, chad, santiago, iceland, singapore
"
    .to_string()
}

/// Extracts `--flag value` pairs from an argument list.
///
/// # Errors
///
/// Returns an error for flags without values or unknown positionals.
pub fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, CliError> {
    parse_flags_with_switches(args, &[])
}

/// Extracts `--flag value` pairs plus valueless `--switch` flags (stored
/// as `"true"`).
///
/// # Errors
///
/// Returns an error for non-switch flags without values or unknown
/// positionals.
pub fn parse_flags_with_switches(
    args: &[String],
    switches: &[&str],
) -> Result<std::collections::HashMap<String, String>, CliError> {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if switches.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else {
            return Err(format!("unexpected argument '{a}'"));
        }
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_parsing() {
        assert_eq!(parse_location("Newark").unwrap().name(), "Newark");
        assert_eq!(parse_location("SINGAPORE").unwrap().name(), "Singapore");
        assert!(parse_location("atlantis").is_err());
    }

    #[test]
    fn system_parsing() {
        assert_eq!(parse_system("allnd").unwrap().name(), "All-ND");
        assert_eq!(parse_system("All-DEF").unwrap().name(), "All-DEF");
        assert!(parse_system("turbo").is_err());
    }

    #[test]
    fn supervised_system_parsing() {
        assert_eq!(parse_system("allnd+sv").unwrap().name(), "All-ND+SV");
        assert_eq!(parse_system("Variation+SV").unwrap().name(), "Variation+SV");
        assert!(parse_system("baseline+sv").is_err(), "only CoolAir versions are supervisable");
        assert!(parse_system("turbo+sv").is_err());
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> =
            ["--location", "newark", "--days", "8"].iter().map(|s| s.to_string()).collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags["location"], "newark");
        assert_eq!(flags["days"], "8");
        assert!(parse_flags(&["--x".to_string()]).is_err());
        assert!(parse_flags(&["oops".to_string()]).is_err());
    }

    #[test]
    fn switch_flag_parsing() {
        let args: Vec<String> =
            ["--store", "/tmp/s", "--resume", "--threads", "2"].iter().map(|s| s.to_string()).collect();
        let flags = parse_flags_with_switches(&args, &["resume"]).unwrap();
        assert_eq!(flags["store"], "/tmp/s");
        assert_eq!(flags["resume"], "true");
        assert_eq!(flags["threads"], "2");
        // Without the switch declared, --resume still wants a value.
        assert!(parse_flags(&["--resume".to_string()]).is_err());
    }

    #[test]
    fn shard_parsing() {
        assert_eq!(parse_shard("2/4").unwrap(), (2, 4));
        assert_eq!(parse_shard("1/1").unwrap(), (1, 1));
        assert!(parse_shard("0/4").is_err());
        assert!(parse_shard("5/4").is_err());
        assert!(parse_shard("2").is_err());
        assert!(parse_shard("a/b").is_err());
    }

    #[test]
    fn sweep_smoke_reports_progress() {
        let out = cmd_sweep(&SweepArgs {
            locations: 2,
            stride: 120,
            training_days: 2,
            threads: 2,
            ..SweepArgs::default()
        })
        .unwrap();
        assert!(out.contains("2 of 2 grid locations"), "got: {out}");
        assert!(out.contains("training jobs executed: 2"), "got: {out}");
        assert!(out.contains("wall clock"), "got: {out}");
    }

    #[test]
    fn tune_smoke_reports_and_round_trips_through_report() {
        let dir = std::env::temp_dir().join("coolair_cli_tune_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("tune-outcome.json");
        let out = cmd_tune(&TuneArgs {
            smoke: true,
            seed: 3,
            threads: 2,
            store: Some(dir.join("store").to_string_lossy().into_owned()),
            out: Some(out_path.to_string_lossy().into_owned()),
            ..TuneArgs::default()
        })
        .unwrap();
        assert!(out.contains("robust tune (seed 3"), "got: {out}");
        assert!(out.contains("worst-case violation"), "got: {out}");
        assert!(out.contains("robust vs nominal over the scenario suite"), "got: {out}");
        assert!(out.contains("memo:"), "got: {out}");
        assert!(out.contains("report artifact: tune-report/"), "got: {out}");

        // The written outcome renders through `coolair report`.
        let rendered = cmd_report(out_path.to_str().unwrap()).unwrap();
        assert!(rendered.contains("robust tune (seed 3"), "got: {rendered}");
        assert!(rendered.contains("decomposition rounds"), "got: {rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_smoke_reports_and_round_trips_through_report() {
        let dir = std::env::temp_dir().join("coolair_cli_fleet_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("fleet-outcome.json");
        let out = cmd_fleet(&FleetArgs {
            smoke: true,
            seed: 11,
            threads: 2,
            store: Some(dir.join("store").to_string_lossy().into_owned()),
            out: Some(out_path.to_string_lossy().into_owned()),
            ..FleetArgs::default()
        })
        .unwrap();
        assert!(out.contains("fleet campaign (seed 11"), "got: {out}");
        assert!(out.contains("decision epochs"), "got: {out}");
        assert!(out.contains("per-site leaderboard"), "got: {out}");
        assert!(out.contains("follow-the-cold vs independent containers"), "got: {out}");
        assert!(out.contains("store cache hits"), "got: {out}");
        assert!(out.contains("report artifact: fleet-report/"), "got: {out}");

        // The written outcome renders through `coolair report`.
        let rendered = cmd_report(out_path.to_str().unwrap()).unwrap();
        assert!(rendered.contains("fleet campaign (seed 11"), "got: {rendered}");
        assert!(rendered.contains("migration total"), "got: {rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn learn_smoke_reports_and_round_trips_through_report() {
        let dir = std::env::temp_dir().join("coolair_cli_learn_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("learn-outcome.json");
        let out = cmd_learn(&LearnArgs {
            smoke: true,
            seed: 5,
            threads: 2,
            store: Some(dir.join("store").to_string_lossy().into_owned()),
            out: Some(out_path.to_string_lossy().into_owned()),
            ..LearnArgs::default()
        })
        .unwrap();
        assert!(out.contains("learn benchmark (seed 5"), "got: {out}");
        assert!(out.contains("training curve"), "got: {out}");
        assert!(out.contains("leaderboard over the episode suite"), "got: {out}");
        assert!(out.contains("learned vs tks"), "got: {out}");
        assert!(out.contains("store cache hits"), "got: {out}");
        assert!(out.contains("report artifact: learn-report/"), "got: {out}");

        // The written outcome renders through `coolair report`.
        let rendered = cmd_report(out_path.to_str().unwrap()).unwrap();
        assert!(rendered.contains("learn benchmark (seed 5"), "got: {rendered}");
        assert!(rendered.contains("leaderboard over the episode suite"), "got: {rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_shard_warms_the_store_and_the_final_run_rides_the_cache() {
        let dir = std::env::temp_dir().join("coolair_cli_fleet_shard_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("store").to_string_lossy().into_owned();
        let base = FleetArgs {
            smoke: true,
            seed: 11,
            threads: 2,
            store: Some(store),
            ..FleetArgs::default()
        };
        // Two shards cover the whole lane-job set between them.
        for k in 1..=2 {
            let out = cmd_fleet(&FleetArgs { shard: Some((k, 2)), ..base.clone() }).unwrap();
            assert!(out.contains(&format!("fleet shard {k}/2: warmed")), "got: {out}");
        }
        // The aggregating run finds every lane in the store.
        let out = cmd_fleet(&base).unwrap();
        let hits: u64 = out
            .lines()
            .find_map(|l| l.strip_prefix("store cache hits: "))
            .and_then(|v| v.trim().parse().ok())
            .expect("cache-hit line");
        assert!(hits > 0, "aggregation should hit the warmed store: {out}");

        // Shards refuse to run without a store to warm.
        let err =
            cmd_fleet(&FleetArgs { shard: Some((1, 2)), store: None, ..base.clone() }).unwrap_err();
        assert!(err.contains("--shard needs --store"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_sites_handles_world_prefix_and_named_lists() {
        assert_eq!(parse_sites("world:3").unwrap().len(), 3);
        let named = parse_sites("iceland, newark").unwrap();
        assert_eq!(named.len(), 2);
        assert_eq!(named[0].name(), "Iceland");
        assert!(parse_sites("world:0").is_err());
        assert!(parse_sites("world:many").is_err());
        assert!(parse_sites("atlantis").is_err());
        assert!(parse_sites(" , ").is_err());
    }

    #[test]
    fn locations_command_lists_five() {
        let out = cmd_locations();
        for name in ["Newark", "Chad", "Santiago", "Iceland", "Singapore"] {
            assert!(out.contains(name), "{name} missing from:\n{out}");
        }
    }

    #[test]
    fn train_save_load_round_trip() {
        let dir = std::env::temp_dir().join("coolair_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let path = path.to_str().unwrap();
        let msg = cmd_train("newark", 8, path).unwrap();
        assert!(msg.contains("saved to"));
        let model = load_model(path).unwrap();
        assert_eq!(model.pods(), 4);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn report_distinguishes_missing_from_corrupt() {
        let dir = std::env::temp_dir().join("coolair_cli_report_test");
        std::fs::create_dir_all(&dir).unwrap();

        let absent = dir.join("no-such-trace.jsonl");
        let _ = std::fs::remove_file(&absent);
        let err = cmd_report(absent.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, ReportError::Missing(_)), "got: {err:?}");
        assert_eq!(err.exit_code(), EXIT_NOT_FOUND);

        let torn = dir.join("torn-trace.jsonl");
        std::fs::write(&torn, b"{ not json\n").unwrap();
        let err = cmd_report(torn.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, ReportError::Corrupt(_)), "got: {err:?}");
        assert_eq!(err.exit_code(), EXIT_CORRUPT);

        let empty = dir.join("empty-trace.jsonl");
        std::fs::write(&empty, b"\n").unwrap();
        let err = cmd_report(empty.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, ReportError::Corrupt(_)), "empty is corrupt, not missing");
    }

    #[test]
    fn usage_names_all_commands() {
        let u = usage();
        for cmd in ["locations", "train", "annual", "validate", "compare", "sweep", "faults"] {
            assert!(u.contains(cmd));
        }
    }
}
