//! The `coolair` command-line binary. See [`coolair_cli::usage`].

use std::process::ExitCode;

use coolair_cli::{
    cmd_annual, cmd_compare, cmd_faults, cmd_fleet, cmd_learn, cmd_locations, cmd_report, cmd_run,
    cmd_serve, cmd_sweep, cmd_train, cmd_tune, cmd_validate, parse_flags,
    parse_flags_with_switches, parse_shard, usage, FleetArgs, LearnArgs, ServeArgs, SweepArgs,
    TuneArgs,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];

    let result = match command.as_str() {
        "locations" => Ok(cmd_locations()),
        "train" => parse_flags(rest).and_then(|f| {
            let location = f.get("location").cloned().unwrap_or_else(|| "newark".into());
            let days = f.get("days").map_or(Ok(45), |d| {
                d.parse::<u64>().map_err(|e| format!("--days: {e}"))
            })?;
            let out = f.get("out").cloned().unwrap_or_else(|| "model.json".into());
            cmd_train(&location, days, &out)
        }),
        "annual" => parse_flags(rest).and_then(|f| {
            let location = f.get("location").cloned().unwrap_or_else(|| "newark".into());
            let system = f.get("system").cloned().unwrap_or_else(|| "allnd".into());
            let trace = f.get("trace").cloned().unwrap_or_else(|| "facebook".into());
            let stride = f.get("stride").map_or(Ok(7), |s| {
                s.parse::<u64>().map_err(|e| format!("--stride: {e}"))
            })?;
            cmd_annual(&location, &system, &trace, stride, f.get("model").map(String::as_str))
        }),
        "validate" => parse_flags(rest).and_then(|f| {
            let location = f.get("location").cloned().unwrap_or_else(|| "newark".into());
            cmd_validate(&location, f.get("model").map(String::as_str))
        }),
        "compare" => parse_flags(rest).and_then(|f| {
            let location = f.get("location").cloned().unwrap_or_else(|| "newark".into());
            let stride = f.get("stride").map_or(Ok(14), |s| {
                s.parse::<u64>().map_err(|e| format!("--stride: {e}"))
            })?;
            cmd_compare(&location, stride)
        }),
        "sweep" => parse_flags_with_switches(rest, &["resume"]).and_then(|f| {
            let mut a = SweepArgs::default();
            if let Some(v) = f.get("locations") {
                a.locations = v.parse().map_err(|e| format!("--locations: {e}"))?;
            }
            if let Some(v) = f.get("stride") {
                a.stride = v.parse().map_err(|e| format!("--stride: {e}"))?;
            }
            if let Some(v) = f.get("training-days") {
                a.training_days = v.parse().map_err(|e| format!("--training-days: {e}"))?;
            }
            if let Some(v) = f.get("threads") {
                a.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            a.store = f.get("store").cloned();
            a.resume = f.contains_key("resume");
            a.shard = f.get("shard").map(|v| parse_shard(v)).transpose()?;
            a.out = f.get("out").cloned();
            cmd_sweep(&a)
        }),
        "tune" => parse_flags_with_switches(rest, &["resume", "smoke"]).and_then(|f| {
            let mut a = TuneArgs::default();
            if let Some(v) = f.get("seed") {
                a.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            a.smoke = f.contains_key("smoke");
            a.rounds = f
                .get("rounds")
                .map(|v| v.parse().map_err(|e| format!("--rounds: {e}")))
                .transpose()?;
            a.iters = f
                .get("iters")
                .map(|v| v.parse().map_err(|e| format!("--iters: {e}")))
                .transpose()?;
            if let Some(v) = f.get("threads") {
                a.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            a.store = f.get("store").cloned();
            a.resume = f.contains_key("resume");
            a.out = f.get("out").cloned();
            cmd_tune(&a)
        }),
        "fleet" => parse_flags_with_switches(rest, &["resume", "smoke"]).and_then(|f| {
            let mut a = FleetArgs::default();
            if let Some(v) = f.get("seed") {
                a.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            a.smoke = f.contains_key("smoke");
            a.containers = f
                .get("containers")
                .map(|v| v.parse().map_err(|e| format!("--containers: {e}")))
                .transpose()?;
            a.sites = f.get("sites").cloned();
            a.epochs = f
                .get("epochs")
                .map(|v| v.parse().map_err(|e| format!("--epochs: {e}")))
                .transpose()?;
            if let Some(v) = f.get("threads") {
                a.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            a.store = f.get("store").cloned();
            a.resume = f.contains_key("resume");
            a.shard = f.get("shard").map(|v| parse_shard(v)).transpose()?;
            a.out = f.get("out").cloned();
            cmd_fleet(&a)
        }),
        "learn" => parse_flags_with_switches(rest, &["resume", "smoke"]).and_then(|f| {
            let mut a = LearnArgs::default();
            if let Some(v) = f.get("seed") {
                a.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            a.smoke = f.contains_key("smoke");
            if let Some(v) = f.get("threads") {
                a.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            a.store = f.get("store").cloned();
            a.resume = f.contains_key("resume");
            a.out = f.get("out").cloned();
            cmd_learn(&a)
        }),
        "faults" => parse_flags(rest).and_then(|f| {
            let location = f.get("location").cloned().unwrap_or_else(|| "newark".into());
            let seed = f.get("seed").map_or(Ok(4242), |s| {
                s.parse::<u64>().map_err(|e| format!("--seed: {e}"))
            })?;
            let severity = f.get("severity").map_or(Ok(1.0), |s| {
                s.parse::<f64>().map_err(|e| format!("--severity: {e}"))
            })?;
            let stride = f.get("stride").map_or(Ok(30), |s| {
                s.parse::<u64>().map_err(|e| format!("--stride: {e}"))
            })?;
            cmd_faults(&location, seed, severity, stride)
        }),
        "run" => parse_flags(rest).and_then(|f| {
            let location = f.get("location").cloned().unwrap_or_else(|| "newark".into());
            let system = f.get("system").cloned().unwrap_or_else(|| "baseline".into());
            let trace_kind = f.get("trace-kind").cloned().unwrap_or_else(|| "facebook".into());
            let day = f.get("day").map_or(Ok(150), |d| {
                d.parse::<u64>().map_err(|e| format!("--day: {e}"))
            })?;
            let days = f.get("days").map_or(Ok(1), |d| {
                d.parse::<u64>().map_err(|e| format!("--days: {e}"))
            })?;
            cmd_run(&location, &system, &trace_kind, day, days, f.get("trace").map(String::as_str))
        }),
        "serve" => parse_flags(rest).and_then(|f| {
            let mut a = ServeArgs::default();
            if let Some(v) = f.get("addr") {
                a.addr = v.clone();
            }
            if let Some(v) = f.get("threads") {
                a.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            if let Some(v) = f.get("queue-depth") {
                a.queue_depth = v.parse().map_err(|e| format!("--queue-depth: {e}"))?;
            }
            if let Some(v) = f.get("max-connections") {
                a.max_connections = v.parse().map_err(|e| format!("--max-connections: {e}"))?;
            }
            if let Some(v) = f.get("event-loops") {
                a.event_loops = v.parse().map_err(|e| format!("--event-loops: {e}"))?;
            }
            a.store = f.get("store").cloned();
            cmd_serve(&a)
        }),
        "report" => match rest {
            [path] => match cmd_report(path) {
                Ok(report) => Ok(report),
                Err(e) => {
                    // Scripts (and the serve daemon's 404-vs-500 mapping)
                    // rely on missing and corrupt traces exiting differently.
                    eprintln!("error: {}", e.message());
                    return ExitCode::from(e.exit_code());
                }
            },
            _ => Err("usage: coolair report <trace.jsonl>".to_string()),
        },
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    };

    match result {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
