//! Shared text rendering for run reports: aligned tables, ASCII
//! histograms, profile summaries and trace-file rendering.
//!
//! Every command that prints tabular output builds it through [`Table`], so
//! fault drills, annual summaries and trace reports share one output path.

use std::fmt::Write as _;

use coolair::KNOBS;
use coolair_runner::ProgressSnapshot;
use coolair_telemetry::{
    Event, Histogram, MetricValue, MetricsRegistry, ProfileReport, TraceRecord,
};
use coolair_tune::TuneOutcome;
use coolair_units::SimTime;

/// A simple aligned-column table: column widths are computed from the
/// content, numeric-looking cells are right-aligned, text left-aligned.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| (*s).to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with one trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |row: &[String], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let pad = width - cell.chars().count();
                if i > 0 {
                    out.push_str("  ");
                }
                if i > 0 && looks_numeric(cell) {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    if i + 1 < cols {
                        for _ in 0..pad {
                            out.push(' ');
                        }
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        if !self.header.is_empty() {
            write_row(&self.header.clone(), &mut out);
        }
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

fn looks_numeric(cell: &str) -> bool {
    let core = cell.trim_start_matches(['+', '-']);
    !core.is_empty()
        && core.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '.')
}

/// Formats a simulated instant as `d<day> HH:MM`.
#[must_use]
pub fn format_time(t: SimTime) -> String {
    let day = t.day_index();
    let within = t.as_secs() % 86_400;
    format!("d{day} {:02}:{:02}", within / 3600, (within % 3600) / 60)
}

/// Renders one histogram as labelled ASCII bars (empty string when the
/// histogram has no observations).
#[must_use]
pub fn render_histogram(name: &str, h: &Histogram) -> String {
    if h.count == 0 {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: n={} mean={:.2} min={:.2} max={:.2}",
        h.count,
        h.mean(),
        h.min.unwrap_or(0.0),
        h.max.unwrap_or(0.0)
    );
    let peak = h.counts.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in h.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let label = if i < h.bounds.len() {
            format!("<= {:>6.1}", h.bounds[i])
        } else {
            format!(">  {:>6.1}", h.bounds.last().copied().unwrap_or(0.0))
        };
        let bar_len = (c as f64 / peak as f64 * 40.0).ceil() as usize;
        let _ = writeln!(out, "  {label} |{} {c}", "#".repeat(bar_len));
    }
    out
}

/// Renders the scalar metrics (counters and gauges) of a registry as a
/// table, in [`MetricsRegistry::snapshot`] order (empty string when there
/// are none).
#[must_use]
pub fn render_scalar_metrics(m: &MetricsRegistry) -> String {
    let mut t = Table::new(&["metric", "value"]);
    let mut rows = 0usize;
    for sample in m.snapshot() {
        let value = match sample.value {
            MetricValue::Counter(n) => n.to_string(),
            MetricValue::Gauge(v) => format!("{v:.3}"),
            MetricValue::Histogram(_) => continue,
        };
        t.row(&[sample.name.to_string(), value]);
        rows += 1;
    }
    if rows == 0 {
        String::new()
    } else {
        t.render()
    }
}

/// Renders the wall-clock profile as a table (empty string when no scope
/// was entered).
#[must_use]
pub fn render_profile(p: &ProfileReport) -> String {
    if p.is_empty() {
        return String::new();
    }
    let mut t = Table::new(&["scope", "calls", "total ms", "mean us", "min us", "max us"]);
    for (name, s) in &p.scopes {
        t.row(&[
            name.clone(),
            s.calls.to_string(),
            format!("{:.2}", s.total_ns as f64 / 1e6),
            format!("{:.1}", s.mean_ns() as f64 / 1e3),
            format!("{:.1}", s.min_ns as f64 / 1e3),
            format!("{:.1}", s.max_ns as f64 / 1e3),
        ]);
    }
    format!("profile (wall-clock):\n{}", t.render())
}

/// Renders executor progress as a queue-style status table plus a cache
/// summary line.
#[must_use]
pub fn render_progress(p: &ProgressSnapshot) -> String {
    let mut t = Table::new(&["state", "jobs"]);
    for (state, n) in [
        ("executed", p.done),
        ("failed", p.failed),
        ("running", p.running),
        ("cache-hit", p.cache_hits),
        ("resumed", p.resumed),
        ("retried", p.retries),
    ] {
        t.row(&[state.to_string(), n.to_string()]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "cache: {:.1}% of jobs served without execution",
        p.cache_hit_rate() * 100.0
    );
    out
}

/// Renders a robust-tune outcome: the design delta, the decomposition
/// rounds, and the robust-vs-nominal table over the full scenario suite.
#[must_use]
pub fn render_tune(o: &TuneOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "robust tune (seed {}, {} round(s), {})",
        o.seed,
        o.rounds_run,
        if o.converged { "converged" } else { "round budget exhausted" }
    );
    let _ = writeln!(
        out,
        "worst-case violation: {:.0} -> {:.0} °C·min ({:+.1}%)",
        o.nominal_worst_violation,
        o.robust_worst_violation,
        percent_change(o.nominal_worst_violation, o.robust_worst_violation)
    );
    let _ = writeln!(
        out,
        "worst-case energy:    {:.1} -> {:.1} kWh ({:+.1}%)",
        o.nominal_worst_energy,
        o.robust_worst_energy,
        percent_change(o.nominal_worst_energy, o.robust_worst_energy)
    );

    let _ = writeln!(out, "\ndesign vector (changed knobs):");
    let mut knobs = Table::new(&["knob", "nominal", "robust"]);
    let mut changed = 0usize;
    for (i, knob) in KNOBS.iter().enumerate() {
        let (n, r) = (o.nominal.get(i), o.robust.get(i));
        if (n - r).abs() > 1e-9 {
            knobs.row(&[knob.name.to_string(), format!("{n:.2}"), format!("{r:.2}")]);
            changed += 1;
        }
    }
    if changed == 0 {
        let _ = writeln!(out, "  (none — the nominal design was already robust)");
    } else {
        out.push_str(&knobs.render());
    }

    let _ = writeln!(out, "\ndecomposition rounds:");
    let mut rounds = Table::new(&["round", "pool", "worst °C·min", "worst kWh", "accepted", "added scenario"]);
    for r in &o.rounds {
        rounds.row(&[
            r.round.to_string(),
            r.pool_size.to_string(),
            format!("{:.0}", r.worst_violation),
            format!("{:.1}", r.worst_energy),
            r.accepted.to_string(),
            if r.added.is_empty() { "(converged)".to_string() } else { r.added.clone() },
        ]);
    }
    out.push_str(&rounds.render());

    let _ = writeln!(out, "\nrobust vs nominal over the scenario suite:");
    let mut t = Table::new(&[
        "scenario",
        "nom °C·min",
        "rob °C·min",
        "nom kWh",
        "rob kWh",
        "nom PUE",
        "rob PUE",
    ]);
    for row in &o.table {
        t.row(&[
            row.label.clone(),
            format!("{:.0}", row.nominal.violation_cmin),
            format!("{:.0}", row.robust.violation_cmin),
            format!("{:.1}", row.nominal.total_kwh()),
            format!("{:.1}", row.robust.total_kwh()),
            format!("{:.3}", row.nominal.pue),
            format!("{:.3}", row.robust.pue),
        ]);
    }
    out.push_str(&t.render());

    let mean_nom = mean(o.table.iter().map(|r| r.nominal.violation_cmin));
    let mean_rob = mean(o.table.iter().map(|r| r.robust.violation_cmin));
    let _ = writeln!(
        out,
        "mean violation: {mean_nom:.0} -> {mean_rob:.0} °C·min; active pool: {}",
        o.pool.join(", ")
    );
    out
}

/// Renders a fleet campaign outcome: per-epoch decisions, the per-site
/// leaderboard, migration totals, and the managed-vs-independent delta.
#[must_use]
pub fn render_fleet(o: &coolair_fleet::FleetOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet campaign (seed {}, {} containers, {} sites, {} epoch(s), migration {})",
        o.seed,
        o.containers,
        o.site_names.len(),
        o.epochs_run,
        if o.migration_enabled { "on" } else { "off" }
    );
    let _ = writeln!(
        out,
        "batched lanes: {} evaluations covered {} container-epochs",
        o.lanes_evaluated,
        o.containers * o.epochs_run
    );

    let _ = writeln!(out, "\ndecision epochs:");
    let mut epochs = Table::new(&["epoch", "days", "best headroom", "moves", "migrated MWh", "loaded/site"]);
    for e in &o.epochs {
        let best = e
            .headroom
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal));
        let best = best.map_or_else(String::new, |(i, h)| {
            format!("{} ({:.0}%)", o.site_names.get(i).map_or("?", String::as_str), h * 100.0)
        });
        let moves: u64 = e.migrations.iter().map(|m| m.containers).sum();
        let loads: Vec<String> = e.loaded_per_site.iter().map(u64::to_string).collect();
        epochs.row(&[
            e.epoch.to_string(),
            format!("d{}..d{}", e.first_day, e.last_day),
            best,
            moves.to_string(),
            format!("{:.3}", e.migrated_mwh),
            loads.join("/"),
        ]);
    }
    out.push_str(&epochs.render());

    let _ = writeln!(out, "\nper-site leaderboard (managed run):");
    let mut sites = Table::new(&[
        "site",
        "containers",
        "loaded 0->N",
        "PUE",
        "violation °C·min",
        "cooling kWh",
        "IT kWh",
    ]);
    let mut ranked: Vec<&coolair_fleet::SiteReport> = o.per_site.iter().collect();
    ranked.sort_by(|a, b| a.pue.partial_cmp(&b.pue).unwrap_or(std::cmp::Ordering::Equal));
    for s in ranked {
        sites.row(&[
            s.name.clone(),
            s.containers.to_string(),
            format!("{} -> {}", s.loaded_initial, s.loaded_final),
            format!("{:.3}", s.pue),
            format!("{:.0}", s.violation_cmin),
            format!("{:.1}", s.cooling_kwh),
            format!("{:.1}", s.it_kwh),
        ]);
    }
    out.push_str(&sites.render());

    let _ = writeln!(out, "\nfollow-the-cold vs independent containers:");
    let mut delta = Table::new(&["metric", "independent", "managed", "delta"]);
    delta.row(&[
        "PUE".to_string(),
        format!("{:.3}", o.independent.pue),
        format!("{:.3}", o.fleet.pue),
        format!("{:+.1}%", percent_change(o.independent.pue, o.fleet.pue)),
    ]);
    delta.row(&[
        "violation °C·min".to_string(),
        format!("{:.0}", o.independent.violation_cmin),
        format!("{:.0}", o.fleet.violation_cmin),
        format!("{:+.1}%", percent_change(o.independent.violation_cmin, o.fleet.violation_cmin)),
    ]);
    delta.row(&[
        "cooling kWh".to_string(),
        format!("{:.1}", o.independent.cooling_kwh),
        format!("{:.1}", o.fleet.cooling_kwh),
        format!("{:+.1}%", percent_change(o.independent.cooling_kwh, o.fleet.cooling_kwh)),
    ]);
    delta.row(&[
        "IT kWh".to_string(),
        format!("{:.1}", o.independent.it_kwh),
        format!("{:.1}", o.fleet.it_kwh),
        format!("{:+.1}%", percent_change(o.independent.it_kwh, o.fleet.it_kwh)),
    ]);
    out.push_str(&delta.render());
    let _ = writeln!(
        out,
        "migration total: {} container-moves, {:.3} MWh of deferrable load",
        o.fleet.moves, o.fleet.migrated_mwh
    );
    out
}

/// Renders a learn outcome: the training curve (CEM generations, then
/// Q checkpoints), the head-to-head leaderboard against the classical
/// controllers, and the learned-vs-TKS margin the acceptance tests pin.
#[must_use]
pub fn render_learn(o: &coolair_learn::LearnOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "learn benchmark (seed {}, best learned: {}, {} rollouts)",
        o.seed, o.best_learned, o.rollouts
    );

    let _ = writeln!(out, "\ntraining curve (best-so-far per iteration):");
    let mut curve = Table::new(&["learner", "iter", "violation °C·min", "energy kWh"]);
    for l in &o.iters {
        curve.row(&[
            l.learner.clone(),
            l.iter.to_string(),
            format!("{:.1}", l.best_violation),
            format!("{:.1}", l.best_energy_kwh),
        ]);
    }
    out.push_str(&curve.render());

    let _ = writeln!(out, "\nleaderboard over the episode suite (best first):");
    let mut board = Table::new(&[
        "policy",
        "violation °C·min",
        "energy kWh",
        "cooling kWh",
        "IT kWh",
    ]);
    for c in &o.leaderboard {
        board.row(&[
            c.name.clone(),
            format!("{:.1}", c.violation_cmin),
            format!("{:.1}", c.energy_kwh),
            format!("{:.1}", c.cooling_kwh),
            format!("{:.1}", c.it_kwh),
        ]);
    }
    out.push_str(&board.render());

    let best = o.leaderboard.iter().find(|c| c.name == o.best_learned);
    let tks = o.leaderboard.iter().find(|c| c.name == "tks");
    if let (Some(best), Some(tks)) = (best, tks) {
        let _ = writeln!(
            out,
            "learned vs tks: violation {:+.1}%, energy {:+.1}%",
            percent_change(tks.violation_cmin, best.violation_cmin),
            percent_change(tks.energy_kwh, best.energy_kwh)
        );
    }
    out
}

fn percent_change(from: f64, to: f64) -> f64 {
    if from.abs() < f64::EPSILON {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Renders a full run summary from trace records: event counts, the
/// supervisor/fault timeline, metric histograms and the profile table.
#[must_use]
pub fn render_records(records: &[TraceRecord]) -> String {
    let mut events: Vec<&Event> = Vec::new();
    let mut metrics: Option<&MetricsRegistry> = None;
    let mut profile: Option<&ProfileReport> = None;
    let mut dump_len: Option<usize> = None;
    for r in records {
        match r {
            TraceRecord::Event(e) => events.push(e),
            TraceRecord::Metrics(m) => metrics = Some(m),
            TraceRecord::Profile(p) => profile = Some(p),
            TraceRecord::Dump(d) => dump_len = Some(d.events.len()),
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "trace: {} events in {} records", events.len(), records.len());

    // Event counts by kind, stable order.
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for e in &events {
        *counts.entry(e.kind_name()).or_insert(0) += 1;
    }
    let mut t = Table::new(&["event", "count"]);
    for (kind, n) in &counts {
        t.row(&[(*kind).to_string(), n.to_string()]);
    }
    out.push_str(&t.render());

    // Incident / transition timeline.
    let timeline: Vec<String> = events
        .iter()
        .filter_map(|e| {
            let label = match e {
                Event::SupervisorTransition { from, to, .. } => {
                    Some(format!("supervisor {from} -> {to}"))
                }
                Event::FailsafeEngaged { max_inlet, .. } => {
                    Some(format!("FAILSAFE engaged (max inlet {max_inlet:.1} C)"))
                }
                Event::FailsafeReleased { .. } => Some("failsafe released".to_string()),
                Event::FaultActivated { kind, .. } => Some(format!("fault on: {kind}")),
                Event::FaultCleared { kind, .. } => Some(format!("fault off: {kind}")),
                Event::TksModeFlip { from, to, .. } => Some(format!("tks {from} -> {to}")),
                _ => None,
            }?;
            let stamp = e.time().map_or_else(String::new, format_time);
            Some(format!("  {stamp:<10} {label}"))
        })
        .collect();
    if !timeline.is_empty() {
        let _ = writeln!(out, "\ntimeline:");
        for line in &timeline {
            let _ = writeln!(out, "{line}");
        }
    }

    if let Some(m) = metrics {
        let mut printed_header = false;
        for sample in m.snapshot() {
            let MetricValue::Histogram(h) = sample.value else { continue };
            let rendered = render_histogram(sample.name, h);
            if !rendered.is_empty() {
                if !printed_header {
                    let _ = writeln!(out, "\nhistograms:");
                    printed_header = true;
                }
                out.push_str(&rendered);
            }
        }
    }

    if let Some(p) = profile {
        let rendered = render_profile(p);
        if !rendered.is_empty() {
            let _ = writeln!(out);
            out.push_str(&rendered);
        }
    }

    if let Some(n) = dump_len {
        let _ = writeln!(out, "\nflight-recorder dump present ({n} events)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair_telemetry::TEMP_BOUNDS_C;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["system", "violation", "PUE"]);
        t.row(&["Baseline".into(), "1234".into(), "1.342".into()]);
        t.row(&["All-ND+SV".into(), "7".into(), "1.18".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // Numeric columns right-align: the short "7" is padded left.
        assert!(lines[2].contains("         7"), "got: {r}");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(SimTime::from_days(150)), "d150 00:00");
        assert_eq!(
            format_time(SimTime::from_secs(150 * 86_400 + 3 * 3600 + 25 * 60)),
            "d150 03:25"
        );
    }

    #[test]
    fn histogram_rendering_scales_bars() {
        let mut h = Histogram::new(&TEMP_BOUNDS_C);
        for _ in 0..10 {
            h.observe(23.0);
        }
        h.observe(31.0);
        let r = render_histogram("inlet_c", &h);
        assert!(r.contains("n=11"));
        assert!(r.contains("<="));
        assert!(r.contains('#'));
    }

    #[test]
    fn scalar_metrics_render_in_snapshot_order() {
        let mut m = MetricsRegistry::default();
        m.counter_add("z.count", 4);
        m.gauge_set("a.gauge", 1.5);
        m.observe("h.hist", 1.0, &[2.0]); // histograms are excluded here
        let r = render_scalar_metrics(&m);
        let a = r.find("a.gauge").expect("gauge row");
        let z = r.find("z.count").expect("counter row");
        assert!(a < z, "snapshot order: {r}");
        assert!(!r.contains("h.hist"), "got: {r}");
        assert_eq!(render_scalar_metrics(&MetricsRegistry::default()), "");
    }

    #[test]
    fn progress_rendering_shows_cache_rate() {
        let p = ProgressSnapshot { done: 3, cache_hits: 1, resumed: 2, ..Default::default() };
        let r = render_progress(&p);
        assert!(r.contains("executed"), "got: {r}");
        assert!(r.contains("cache: 50.0%"), "got: {r}");
    }

    #[test]
    fn record_summary_counts_events() {
        let records = vec![
            TraceRecord::Event(Event::DayStart { day: 1 }),
            TraceRecord::Event(Event::RegimeChange {
                time: SimTime::from_secs(600),
                from: "closed".into(),
                to: "fc@40%".into(),
            }),
            TraceRecord::Metrics(MetricsRegistry::default()),
        ];
        let r = render_records(&records);
        assert!(r.contains("regime-change"), "got: {r}");
        assert!(r.contains("day-start"));
    }
}
