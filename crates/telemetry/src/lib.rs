//! Structured observability for the CoolAir control loop.
//!
//! The crate provides one cheap, cloneable [`Telemetry`] handle that fans
//! out to four facilities:
//!
//! * a typed **event bus** ([`Event`]) stamped with `SimTime`, streamed to
//!   a memory buffer or a JSONL writer;
//! * a deterministic **metrics registry** ([`MetricsRegistry`]) of
//!   counters, gauges and fixed-bucket histograms;
//! * wall-clock **profiling scopes** ([`ScopeTimer`]/[`ProfileReport`])
//!   around the hot paths, kept separate from the deterministic artifacts;
//! * a bounded **flight recorder** ([`FlightRecorder`]) whose tail is
//!   snapshotted automatically when the failsafe engages or a panic
//!   unwinds through a [`PanicGuard`].
//!
//! A default-constructed handle is disabled: every operation is a branch
//! on a `None` and returns immediately, so instrumented code pays nothing
//! when nobody is listening. `emit_with` defers even event construction.

use std::fmt;
use std::io::Write;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

pub mod event;
pub mod metrics;
pub mod profile;
pub mod recorder;

pub use event::Event;
pub use metrics::{
    Histogram, MetricSample, MetricValue, MetricsRegistry, ERROR_BOUNDS_C, TEMP_BOUNDS_C,
};
pub use profile::{ProfileReport, Profiler, ScopeStat, ScopeTimer};
pub use recorder::{FlightDump, FlightRecorder, DEFAULT_CAPACITY};

/// One line of a `.jsonl` trace file.
///
/// A trace is a stream of `Event` records followed by optional `Metrics`,
/// `Profile` and `Dump` trailer records appended by [`Telemetry::finish`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A control-loop event.
    Event(Event),
    /// End-of-run metrics registry snapshot.
    Metrics(MetricsRegistry),
    /// End-of-run wall-clock profile (non-deterministic by nature).
    Profile(ProfileReport),
    /// A flight-recorder snapshot taken at an incident.
    Dump(FlightDump),
}

enum Sink {
    Memory(Vec<Event>),
    Writer(Box<dyn Write + Send>),
    Discard,
}

struct TelemetryInner {
    sink: Mutex<Sink>,
    metrics: Mutex<MetricsRegistry>,
    metrics_version: std::sync::atomic::AtomicU64,
    profiler: Mutex<Profiler>,
    recorder: Mutex<FlightRecorder>,
    dump: Mutex<Option<FlightDump>>,
}

impl TelemetryInner {
    /// Bumps the registry version; called by every registry mutation so
    /// renderers (the serve daemon's memoized `/metrics` encoding) can
    /// cheaply detect staleness.
    fn bump_metrics_version(&self) {
        self.metrics_version.fetch_add(1, std::sync::atomic::Ordering::Release);
    }
}

/// Cheap, cloneable, thread-safe handle to the telemetry bus.
///
/// All clones share one underlying bus. The default handle is disabled
/// and free: no allocation, no locking, no event construction.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish()
    }
}

impl Telemetry {
    /// A disabled handle: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled bus retaining events in memory (for tests and reports).
    #[must_use]
    pub fn memory() -> Self {
        Telemetry::with_sink(Sink::Memory(Vec::new()))
    }

    /// An enabled bus that streams each event as one JSONL line to `w`.
    #[must_use]
    pub fn writer<W: Write + Send + 'static>(w: W) -> Self {
        Telemetry::with_sink(Sink::Writer(Box::new(w)))
    }

    /// An enabled bus that drops events but still maintains metrics,
    /// profile and flight recorder.
    #[must_use]
    pub fn discard() -> Self {
        Telemetry::with_sink(Sink::Discard)
    }

    fn with_sink(sink: Sink) -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                sink: Mutex::new(sink),
                metrics: Mutex::new(MetricsRegistry::default()),
                metrics_version: std::sync::atomic::AtomicU64::new(0),
                profiler: Mutex::new(Profiler::default()),
                recorder: Mutex::new(FlightRecorder::default()),
                dump: Mutex::new(None),
            })),
        }
    }

    /// Whether the bus is live. Instrumented code may branch on this to
    /// skip expensive preparation, though [`Telemetry::emit_with`] already
    /// covers the common case.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Publishes an event: sink, flight recorder, and per-kind counter.
    /// Emitting [`Event::FailsafeEngaged`] also snapshots the flight
    /// recorder into the incident dump slot (first incident wins).
    pub fn emit(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.lock().counter_add(event.kind_name(), 1);
        inner.bump_metrics_version();
        {
            let mut rec = inner.recorder.lock();
            rec.push(event.clone());
            if matches!(event, Event::FailsafeEngaged { .. }) {
                let mut dump = inner.dump.lock();
                if dump.is_none() {
                    *dump = Some(rec.snapshot("failsafe-engaged"));
                }
            }
        }
        match &mut *inner.sink.lock() {
            Sink::Memory(buf) => buf.push(event),
            Sink::Writer(w) => write_record(w, &TraceRecord::Event(event)),
            Sink::Discard => {}
        }
    }

    /// Publishes the event built by `f`, constructing it only when the
    /// bus is live. Prefer this on hot paths.
    pub fn emit_with<F: FnOnce() -> Event>(&self, f: F) {
        if self.inner.is_some() {
            self.emit(f());
        }
    }

    /// Adds `n` to a registry counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().counter_add(name, n);
            inner.bump_metrics_version();
        }
    }

    /// Sets a registry gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().gauge_set(name, value);
            inner.bump_metrics_version();
        }
    }

    /// Merges a locally accumulated histogram into the named registry
    /// histogram in one lock acquisition (bucket-wise add; both sides
    /// must share bounds). The batching primitive behind the serve
    /// daemon's per-event-loop latency stats: loops observe into a plain
    /// local [`Histogram`] at request rate and merge here at flush rate.
    pub fn merge_histogram(&self, name: &str, local: &Histogram) {
        if local.count == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            inner.metrics.lock().merge_histogram(name, local);
            inner.bump_metrics_version();
        }
    }

    /// The registry's mutation counter: bumped by every counter, gauge,
    /// histogram or event write. Two equal readings with no writes in
    /// between guarantee [`Telemetry::metrics`] would return identical
    /// registries, so renderers can memoize their encoding against this.
    /// Always 0 on a disabled handle.
    #[must_use]
    pub fn metrics_version(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.metrics_version.load(std::sync::atomic::Ordering::Acquire),
            None => 0,
        }
    }

    /// Records one observation into a registry histogram, creating it
    /// over `bounds` on first use.
    pub fn observe(&self, name: &str, value: f64, bounds: &[f64]) {
        if let Some(inner) = &self.inner {
            inner.metrics.lock().observe(name, value, bounds);
            inner.bump_metrics_version();
        }
    }

    /// Starts timing `scope`; the returned guard records on drop. No-op
    /// (no clock read) when disabled.
    pub fn time_scope(&self, scope: &'static str) -> ScopeTimer {
        if self.inner.is_some() {
            ScopeTimer::running(scope, self.clone())
        } else {
            ScopeTimer::noop()
        }
    }

    pub(crate) fn record_scope(&self, scope: &'static str, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.profiler.lock().record(scope, ns);
        }
    }

    /// Arms a guard that dumps the flight recorder to stderr if the
    /// current thread panics before the guard is dropped normally.
    #[must_use = "the guard must be bound to a local so it lives to the end of the scope"]
    pub fn panic_guard(&self) -> PanicGuard {
        PanicGuard { tel: self.clone() }
    }

    /// Drains and returns the events retained by a [`Telemetry::memory`]
    /// sink (empty for other sinks).
    #[must_use]
    pub fn take_events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => match &mut *inner.sink.lock() {
                Sink::Memory(buf) => std::mem::take(buf),
                _ => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// A snapshot of the metrics registry.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.inner {
            Some(inner) => inner.metrics.lock().clone(),
            None => MetricsRegistry::default(),
        }
    }

    /// A snapshot of the wall-clock profile.
    #[must_use]
    pub fn profile(&self) -> ProfileReport {
        match &self.inner {
            Some(inner) => inner.profiler.lock().report(),
            None => ProfileReport::default(),
        }
    }

    /// Takes the incident dump captured at the first failsafe engagement,
    /// if one occurred.
    #[must_use]
    pub fn take_flight_dump(&self) -> Option<FlightDump> {
        self.inner.as_ref().and_then(|inner| inner.dump.lock().take())
    }

    /// Finalizes a run: appends `Metrics`, `Profile` and (if an incident
    /// occurred) `Dump` trailer records to a writer sink and flushes it.
    /// Harmless on other sinks.
    pub fn finish(&self) {
        let Some(inner) = &self.inner else { return };
        let metrics = inner.metrics.lock().clone();
        let profile = inner.profiler.lock().report();
        let dump = inner.dump.lock().clone();
        if let Sink::Writer(w) = &mut *inner.sink.lock() {
            write_record(w, &TraceRecord::Metrics(metrics));
            write_record(w, &TraceRecord::Profile(profile));
            if let Some(d) = dump {
                write_record(w, &TraceRecord::Dump(d));
            }
            let _ = w.flush();
        }
    }
}

/// Best-effort line write: telemetry must never take the run down with it.
fn write_record(w: &mut Box<dyn Write + Send>, record: &TraceRecord) {
    if let Ok(line) = serde_json::to_string(record) {
        let _ = writeln!(w, "{line}");
    }
}

/// Dumps the flight recorder to stderr when a panic unwinds through it.
///
/// Hold one across a risky region (e.g. a full simulated day); drop it
/// normally on success and it does nothing.
#[must_use = "the guard only protects the region it outlives"]
pub struct PanicGuard {
    tel: Telemetry,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        if let Some(inner) = &self.tel.inner {
            let dump = inner.recorder.lock().snapshot("panic");
            if let Ok(json) = serde_json::to_string(&TraceRecord::Dump(dump)) {
                eprintln!("telemetry flight-recorder dump (panic):\n{json}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair_units::SimTime;

    fn tick(secs: u64) -> Event {
        Event::ControlTick {
            time: SimTime::from_secs(secs),
            controller: "Baseline".into(),
            regime: "closed".into(),
            max_inlet: 22.0,
            outside: 10.0,
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.emit(tick(0));
        tel.counter_add("x", 1);
        tel.observe("h", 1.0, &[1.0]);
        {
            let _t = tel.time_scope("s");
        }
        assert!(tel.take_events().is_empty());
        assert_eq!(tel.metrics(), MetricsRegistry::default());
        assert!(tel.profile().is_empty());
    }

    #[test]
    fn emit_with_skips_construction_when_disabled() {
        let tel = Telemetry::disabled();
        tel.emit_with(|| unreachable!("closure must not run when disabled"));
    }

    #[test]
    fn memory_sink_retains_events_and_counts_kinds() {
        let tel = Telemetry::memory();
        tel.emit(tick(0));
        tel.emit(tick(600));
        tel.emit(Event::RegimeChange {
            time: SimTime::from_secs(600),
            from: "closed".into(),
            to: "fc@40%".into(),
        });
        let events = tel.take_events();
        assert_eq!(events.len(), 3);
        let m = tel.metrics();
        assert_eq!(m.counter("control-tick"), 2);
        assert_eq!(m.counter("regime-change"), 1);
    }

    #[test]
    fn shared_handle_clones_feed_one_bus() {
        let tel = Telemetry::memory();
        let clone = tel.clone();
        clone.emit(tick(0));
        assert_eq!(tel.take_events().len(), 1);
    }

    #[test]
    fn writer_sink_streams_jsonl_with_trailers() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tel = Telemetry::writer(Shared(buf.clone()));
        tel.emit(tick(0));
        tel.observe("inlet_c", 24.0, &TEMP_BOUNDS_C);
        {
            let _t = tel.time_scope("plant.step");
        }
        tel.finish();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "event + metrics + profile: {text}");
        let first: TraceRecord = serde_json::from_str(lines[0]).unwrap();
        assert!(matches!(first, TraceRecord::Event(Event::ControlTick { .. })));
        let metrics: TraceRecord = serde_json::from_str(lines[1]).unwrap();
        match metrics {
            TraceRecord::Metrics(m) => assert_eq!(m.histogram("inlet_c").unwrap().count, 1),
            other => panic!("expected metrics trailer, got {other:?}"),
        }
        let profile: TraceRecord = serde_json::from_str(lines[2]).unwrap();
        match profile {
            TraceRecord::Profile(p) => assert_eq!(p.scopes["plant.step"].calls, 1),
            other => panic!("expected profile trailer, got {other:?}"),
        }
    }

    #[test]
    fn failsafe_engagement_snapshots_flight_recorder() {
        let tel = Telemetry::discard();
        tel.emit(tick(0));
        tel.emit(Event::FailsafeEngaged { time: SimTime::from_secs(60), max_inlet: 33.0 });
        let dump = tel.take_flight_dump().expect("dump captured");
        assert_eq!(dump.reason, "failsafe-engaged");
        assert_eq!(dump.events.len(), 2);
        assert!(tel.take_flight_dump().is_none(), "dump is taken once");
    }

    #[test]
    fn scope_timer_records_on_drop() {
        let tel = Telemetry::discard();
        {
            let _t = tel.time_scope("optimizer.select");
        }
        {
            let _t = tel.time_scope("optimizer.select");
        }
        let p = tel.profile();
        assert_eq!(p.scopes["optimizer.select"].calls, 2);
    }
}
