//! Wall-clock profiling scopes for the hot paths.
//!
//! Timing data is intentionally kept out of the metrics registry and the
//! event stream: wall-clock durations vary run to run, and mixing them into
//! the deterministic artifacts would break bit-identical traces. The
//! profiler aggregates per-scope statistics and reports them separately.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Aggregated wall-clock statistics for one named scope.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScopeStat {
    /// Number of times the scope was entered.
    pub calls: u64,
    /// Total time spent inside the scope, nanoseconds.
    pub total_ns: u64,
    /// Fastest single entry, nanoseconds.
    pub min_ns: u64,
    /// Slowest single entry, nanoseconds.
    pub max_ns: u64,
}

impl ScopeStat {
    fn record(&mut self, ns: u64) {
        if self.calls == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.calls += 1;
        self.total_ns += ns;
    }

    /// Mean nanoseconds per call (0 when never entered).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Accumulates [`ScopeStat`]s keyed by scope name.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    scopes: BTreeMap<&'static str, ScopeStat>,
}

impl Profiler {
    /// Records one completed entry of `scope` lasting `ns` nanoseconds.
    pub fn record(&mut self, scope: &'static str, ns: u64) {
        self.scopes.entry(scope).or_default().record(ns);
    }

    /// Snapshots the accumulated statistics into a serializable report.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            scopes: self
                .scopes
                .iter()
                .map(|(name, stat)| ((*name).to_string(), stat.clone()))
                .collect(),
        }
    }
}

/// A serializable snapshot of all profiling scopes for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Per-scope statistics, keyed by scope name (stable order).
    pub scopes: BTreeMap<String, ScopeStat>,
}

impl ProfileReport {
    /// True when no scope was ever entered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }
}

/// RAII guard that times one scope entry; records on drop.
///
/// Obtained from [`crate::Telemetry::time_scope`]. When telemetry is
/// disabled the guard holds no state and dropping it does nothing. The
/// guard owns a clone of the handle (an `Option<Arc>`), so it never
/// borrows the instrumented object.
#[must_use = "a scope timer measures until it is dropped"]
pub struct ScopeTimer {
    state: Option<(&'static str, Instant, crate::Telemetry)>,
}

impl ScopeTimer {
    pub(crate) fn noop() -> Self {
        ScopeTimer { state: None }
    }

    pub(crate) fn running(scope: &'static str, tel: crate::Telemetry) -> Self {
        ScopeTimer { state: Some((scope, Instant::now(), tel)) }
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        if let Some((scope, start, tel)) = self.state.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            tel.record_scope(scope, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_stats_aggregate() {
        let mut p = Profiler::default();
        p.record("a", 10);
        p.record("a", 30);
        p.record("b", 5);
        let r = p.report();
        let a = &r.scopes["a"];
        assert_eq!(a.calls, 2);
        assert_eq!(a.total_ns, 40);
        assert_eq!(a.min_ns, 10);
        assert_eq!(a.max_ns, 30);
        assert_eq!(a.mean_ns(), 20);
        assert_eq!(r.scopes["b"].calls, 1);
    }

    #[test]
    fn report_round_trips() {
        let mut p = Profiler::default();
        p.record("engine.run_day", 1_000_000);
        let r = p.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
