//! A deterministic, serde-serializable metrics registry.
//!
//! Counters, gauges and fixed-bucket histograms, all keyed by `BTreeMap` so
//! iteration (and therefore serialization) order is stable. Everything in
//! the registry is driven by *simulation-domain* values — wall-clock
//! measurements belong in the profiler — so two runs with the same seed
//! produce identical registries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A histogram over fixed, caller-supplied bucket bounds.
///
/// `counts` has one slot per bound plus a final overflow slot:
/// `counts[i]` counts observations `v <= bounds[i]` (first matching bound
/// wins), and `counts[bounds.len()]` counts observations above every bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper-inclusive bucket bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` slots).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation, if any.
    pub min: Option<f64>,
    /// Largest observation, if any.
    pub max: Option<f64>,
}

impl Histogram {
    /// Creates an empty histogram over `bounds` (ascending).
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Bucket-wise merge of `other` into `self`. Returns `false` (and
    /// leaves `self` untouched) when the bucket bounds differ — merging
    /// is only defined between histograms built over the same bounds.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return false;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        true
    }

    /// Mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile from the bucket counts: the upper bound of the
    /// bucket containing the `q`-quantile observation (`q` in `[0, 1]`).
    /// Observations above every bound report the observed maximum.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max.unwrap_or(f64::NAN)
                });
            }
        }
        self.max
    }
}

/// Counters, gauges, and histograms for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `n` to a counter, creating it at zero first if needed.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram, creating it over
    /// `bounds` on first use (later calls ignore `bounds`).
    pub fn observe(&mut self, name: &str, value: f64, bounds: &[f64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Merges a pre-accumulated histogram into the named one, creating
    /// it (as a copy of `local`) on first use. Mismatched bounds fall
    /// back to per-value approximation via [`Histogram::observe`] of the
    /// bucket bounds, so no observation is silently dropped.
    pub fn merge_histogram(&mut self, name: &str, local: &Histogram) {
        match self.histograms.entry(name.to_string()) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(local.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                let h = slot.get_mut();
                if !h.merge(local) {
                    for (i, &n) in local.counts.iter().enumerate() {
                        let representative =
                            local.bounds.get(i).copied().or(local.max).unwrap_or(0.0);
                        for _ in 0..n {
                            h.observe(representative);
                        }
                    }
                }
            }
        }
    }

    /// A counter's current value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// One ordered pass over every metric in the registry: counters,
    /// gauges and histograms merged into a single name-sorted sequence
    /// (ties broken counter < gauge < histogram, though families never
    /// share a name in practice). Renderers — the CLI reporter, the
    /// Prometheus encoder — iterate this instead of reaching into the
    /// per-family maps, so they cannot disagree about ordering.
    pub fn snapshot(&self) -> impl Iterator<Item = MetricSample<'_>> {
        let mut samples: Vec<MetricSample<'_>> = self
            .counters
            .iter()
            .map(|(name, &v)| MetricSample { name, value: MetricValue::Counter(v) })
            .chain(
                self.gauges
                    .iter()
                    .map(|(name, &v)| MetricSample { name, value: MetricValue::Gauge(v) }),
            )
            .chain(
                self.histograms
                    .iter()
                    .map(|(name, h)| MetricSample { name, value: MetricValue::Histogram(h) }),
            )
            .collect();
        samples.sort_by(|a, b| a.name.cmp(b.name).then(a.value.family_rank().cmp(&b.value.family_rank())));
        samples.into_iter()
    }
}

/// One metric in a [`MetricsRegistry::snapshot`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample<'a> {
    /// Registry key (may carry embedded `{label="…"}` pairs).
    pub name: &'a str,
    /// The metric's current value.
    pub value: MetricValue<'a>,
}

/// The value half of a [`MetricSample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue<'a> {
    /// A monotonic count.
    Counter(u64),
    /// A last-write-wins value.
    Gauge(f64),
    /// A fixed-bucket distribution.
    Histogram(&'a Histogram),
}

impl MetricValue<'_> {
    fn family_rank(&self) -> u8 {
        match self {
            MetricValue::Counter(_) => 0,
            MetricValue::Gauge(_) => 1,
            MetricValue::Histogram(_) => 2,
        }
    }
}

/// Default bucket bounds for inlet-temperature histograms, °C.
pub const TEMP_BOUNDS_C: [f64; 12] =
    [10.0, 14.0, 18.0, 20.0, 22.0, 24.0, 26.0, 28.0, 30.0, 32.0, 35.0, 40.0];

/// Default bucket bounds for model-error histograms, °C.
pub const ERROR_BOUNDS_C: [f64; 8] = [0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        for v in [0.5, 1.5, 1.5, 4.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, Some(0.5));
        assert_eq!(h.max, Some(9.0));
        assert!((h.mean() - 3.3).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(9.0), "overflow bucket reports max");
    }

    #[test]
    fn registry_round_trips_and_is_ordered() {
        let mut r = MetricsRegistry::default();
        r.counter_add("z.ticks", 3);
        r.counter_add("a.ticks", 1);
        r.gauge_set("pue", 1.12);
        r.observe("inlet", 24.0, &TEMP_BOUNDS_C);
        r.observe("inlet", 31.0, &TEMP_BOUNDS_C);
        let json = serde_json::to_string(&r).unwrap();
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // BTreeMap ⇒ serialization order is key order, not insertion order.
        let a = json.find("a.ticks").unwrap();
        let z = json.find("z.ticks").unwrap();
        assert!(a < z);
    }

    #[test]
    fn snapshot_is_name_ordered_across_families() {
        let mut r = MetricsRegistry::default();
        r.observe("m.latency", 0.2, &[1.0]);
        r.counter_add("z.ticks", 2);
        r.gauge_set("a.load", 0.5);
        r.counter_add("b.ticks", 1);
        let names: Vec<&str> = r.snapshot().map(|s| s.name).collect();
        assert_eq!(names, vec!["a.load", "b.ticks", "m.latency", "z.ticks"]);
        let kinds: Vec<u8> = r
            .snapshot()
            .map(|s| match s.value {
                MetricValue::Counter(_) => 0,
                MetricValue::Gauge(_) => 1,
                MetricValue::Histogram(_) => 2,
            })
            .collect();
        assert_eq!(kinds, vec![1, 0, 2, 0]);
        match r.snapshot().find(|s| s.name == "m.latency").unwrap().value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        };
    }

    #[test]
    fn merge_accumulates_and_guards_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(3.0);
        let mut b = Histogram::new(&[1.0, 2.0]);
        b.observe(1.5);
        assert!(a.merge(&b));
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, Some(0.5));
        assert_eq!(a.max, Some(3.0));
        let other_bounds = Histogram::new(&[9.0]);
        assert!(!a.merge(&other_bounds), "mismatched bounds must refuse");
        assert_eq!(a.count, 3, "refused merge leaves target untouched");

        let mut r = MetricsRegistry::default();
        r.merge_histogram("lat", &a);
        r.merge_histogram("lat", &b);
        let h = r.histogram("lat").expect("created on first merge");
        assert_eq!(h.count, 4);
        assert_eq!(h.counts, vec![1, 2, 1]);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new(&ERROR_BOUNDS_C);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }
}
