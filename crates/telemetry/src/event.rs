//! The typed event taxonomy of the control loop.
//!
//! Every event is stamped with [`SimTime`] (never wall-clock time), so a
//! trace is a pure function of the simulated run: the same seed produces
//! the same stream byte for byte. Wall-clock measurements live in the
//! profiler ([`crate::ProfileReport`]), not here.

use coolair_units::SimTime;
use serde::{Deserialize, Serialize};

/// One structured event on the telemetry bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A simulated day began (including its warm-up hours).
    DayStart {
        /// Calendar day index.
        day: u64,
    },
    /// A simulated day finished; carries its headline aggregates.
    DayEnd {
        /// Calendar day index.
        day: u64,
        /// Total °C above the desired maximum over all sensor readings.
        violation_sum: f64,
        /// Cooling energy, kWh.
        cooling_kwh: f64,
        /// IT energy, kWh.
        it_kwh: f64,
    },
    /// The controller issued a cooling command for the next control period.
    ControlTick {
        /// Decision time.
        time: SimTime,
        /// Controller display name (e.g. `Baseline`, `All-ND+SV`).
        controller: String,
        /// The commanded regime, rendered (`closed`, `fc@55%`, `ac@100%`).
        regime: String,
        /// Warmest pod inlet the controller saw, °C.
        max_inlet: f64,
        /// Outside temperature, °C.
        outside: f64,
    },
    /// The commanded cooling regime changed between control periods.
    RegimeChange {
        /// Decision time.
        time: SimTime,
        /// Previous command.
        from: String,
        /// New command.
        to: String,
    },
    /// The baseline TKS controller flipped between LOT and HOT modes.
    TksModeFlip {
        /// Observation time.
        time: SimTime,
        /// Previous mode (`lot`/`hot`).
        from: String,
        /// New mode.
        to: String,
    },
    /// The degraded-mode supervisor moved along its fallback ladder.
    SupervisorTransition {
        /// Decision time.
        time: SimTime,
        /// Previous mode (`normal`/`conservative`/`fallback`).
        from: String,
        /// New mode.
        to: String,
    },
    /// The hard overtemp (or blind-sensor) failsafe force-engaged the AC.
    /// Emitting this event also snapshots the flight recorder.
    FailsafeEngaged {
        /// Decision time.
        time: SimTime,
        /// Best estimate of the hottest inlet, °C — from trusted sensors
        /// when any survive, raw readings otherwise (always finite).
        max_inlet: f64,
    },
    /// The failsafe released after the hysteresis condition cleared.
    FailsafeReleased {
        /// Decision time.
        time: SimTime,
    },
    /// An injected fault window became active.
    FaultActivated {
        /// First sample time at which the window was observed active.
        time: SimTime,
        /// Human-readable fault kind (e.g. `sensor[2]: StuckAt(40.0)`).
        kind: String,
    },
    /// An injected fault window cleared.
    FaultCleared {
        /// First sample time at which the window was observed inactive.
        time: SimTime,
        /// Human-readable fault kind.
        kind: String,
    },
    /// The supervisor scored a Cooling Predictor prediction against a
    /// validated observation.
    ModelErrorScored {
        /// Observation time.
        time: SimTime,
        /// This window's mean absolute error, °C.
        error_c: f64,
        /// The updated EWMA of the error, °C.
        ewma_c: f64,
    },
    /// The robust tuner finished one decomposition round (tune incumbent →
    /// adversary picks the scenario that most breaks it → grow the active
    /// set). Not a simulated-time event — the tuner lives in the
    /// orchestration layer, like [`Event::JobState`].
    TuneRound {
        /// Round index (0-based).
        round: u64,
        /// Active-scenario-pool size after the round.
        pool_size: u64,
        /// The incumbent's worst-case violation over the pool, °C·min.
        worst_violation: f64,
        /// Label of the scenario the adversary added (empty when the
        /// round converged and added nothing).
        added: String,
    },
    /// The fleet's global compute manager closed one decision epoch:
    /// ranked sites by free-cooling headroom and migrated deferrable batch
    /// load toward the cold. An orchestration-layer event, like
    /// [`Event::TuneRound`].
    FleetEpoch {
        /// Decision epoch (0-based).
        epoch: u64,
        /// Containers whose batch load moved this epoch.
        moves: u64,
        /// Migrated deferrable energy this epoch, MWh.
        migrated_mwh: f64,
        /// Name of the site with the most free-cooling headroom.
        best_site: String,
    },
    /// A baseline learner finished one training iteration (a CEM
    /// generation or a Q-learning evaluation checkpoint). An
    /// orchestration-layer event, like [`Event::TuneRound`].
    LearnIter {
        /// Learner name (`cem` or `q`).
        learner: String,
        /// Iteration index (0-based).
        iter: u64,
        /// Best-so-far suite violation, °C·min.
        best_violation: f64,
        /// Best-so-far suite energy, kWh.
        best_energy_kwh: f64,
    },
    /// An orchestrated experiment job changed state in the
    /// `coolair-runner` executor. Like the day markers, this is not a
    /// simulated-time event — jobs live in the orchestration layer above
    /// the simulation clock.
    JobState {
        /// Artifact namespace of the job (e.g. `cooling-model`,
        /// `world-point`).
        kind: String,
        /// Human job label (e.g. the location name).
        label: String,
        /// New state: `done`, `failed`, `retry`, `cache-hit` or `resumed`.
        state: String,
        /// Attempt number the transition refers to (0 for cache serves).
        attempt: u32,
    },
}

impl Event {
    /// The simulated instant the event refers to (`None` for day markers,
    /// which are keyed by day index instead).
    #[must_use]
    pub fn time(&self) -> Option<SimTime> {
        match self {
            Event::DayStart { .. }
            | Event::DayEnd { .. }
            | Event::JobState { .. }
            | Event::TuneRound { .. }
            | Event::FleetEpoch { .. }
            | Event::LearnIter { .. } => None,
            Event::ControlTick { time, .. }
            | Event::RegimeChange { time, .. }
            | Event::TksModeFlip { time, .. }
            | Event::SupervisorTransition { time, .. }
            | Event::FailsafeEngaged { time, .. }
            | Event::FailsafeReleased { time }
            | Event::FaultActivated { time, .. }
            | Event::FaultCleared { time, .. }
            | Event::ModelErrorScored { time, .. } => Some(*time),
        }
    }

    /// Stable short name of the variant, for counting and filtering.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::DayStart { .. } => "day-start",
            Event::DayEnd { .. } => "day-end",
            Event::ControlTick { .. } => "control-tick",
            Event::RegimeChange { .. } => "regime-change",
            Event::TksModeFlip { .. } => "tks-mode-flip",
            Event::SupervisorTransition { .. } => "supervisor-transition",
            Event::FailsafeEngaged { .. } => "failsafe-engaged",
            Event::FailsafeReleased { .. } => "failsafe-released",
            Event::FaultActivated { .. } => "fault-activated",
            Event::FaultCleared { .. } => "fault-cleared",
            Event::ModelErrorScored { .. } => "model-error",
            Event::TuneRound { .. } => "tune-round",
            Event::FleetEpoch { .. } => "fleet-epoch",
            Event::LearnIter { .. } => "learn-iter",
            Event::JobState { .. } => "job-state",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::DayStart { day: 150 },
            Event::ControlTick {
                time: SimTime::from_secs(600),
                controller: "Baseline".into(),
                regime: "fc@55%".into(),
                max_inlet: 24.5,
                outside: 12.0,
            },
            Event::RegimeChange {
                time: SimTime::from_secs(1200),
                from: "closed".into(),
                to: "ac@100%".into(),
            },
            Event::FailsafeEngaged { time: SimTime::from_secs(1800), max_inlet: 33.0 },
            Event::JobState {
                kind: "world-point".into(),
                label: "cell0231".into(),
                state: "done".into(),
                attempt: 1,
            },
            Event::FleetEpoch {
                epoch: 2,
                moves: 5,
                migrated_mwh: 0.12,
                best_site: "Iceland".into(),
            },
            Event::LearnIter {
                learner: "cem".into(),
                iter: 3,
                best_violation: 812.5,
                best_energy_kwh: 140.25,
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Event::DayStart { day: 0 }.kind_name(), "day-start");
        assert_eq!(
            Event::FailsafeReleased { time: SimTime::EPOCH }.kind_name(),
            "failsafe-released"
        );
    }

    #[test]
    fn time_accessor_covers_all_timed_variants() {
        let t = SimTime::from_secs(60);
        assert_eq!(Event::FailsafeReleased { time: t }.time(), Some(t));
        assert_eq!(Event::DayStart { day: 3 }.time(), None);
        let job = Event::JobState {
            kind: "cooling-model".into(),
            label: "Newark".into(),
            state: "cache-hit".into(),
            attempt: 0,
        };
        assert_eq!(job.time(), None, "job states live above the simulation clock");
        assert_eq!(job.kind_name(), "job-state");
        let epoch = Event::FleetEpoch {
            epoch: 0,
            moves: 0,
            migrated_mwh: 0.0,
            best_site: "Newark".into(),
        };
        assert_eq!(epoch.time(), None, "fleet epochs live above the simulation clock");
        assert_eq!(epoch.kind_name(), "fleet-epoch");
        let learn = Event::LearnIter {
            learner: "q".into(),
            iter: 0,
            best_violation: 0.0,
            best_energy_kwh: 0.0,
        };
        assert_eq!(learn.time(), None, "learn iterations live above the simulation clock");
        assert_eq!(learn.kind_name(), "learn-iter");
    }
}
