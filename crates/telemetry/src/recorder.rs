//! Bounded flight recorder: a ring buffer of the most recent events.
//!
//! The recorder exists for post-mortems. It always holds the last `N`
//! events regardless of which sink the bus writes to, and is snapshotted
//! into a [`FlightDump`] when the failsafe engages or a panic unwinds
//! through a [`crate::PanicGuard`].

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::event::Event;

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 256;

/// Fixed-capacity ring of recent events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<Event>,
    /// Total events ever pushed (including those already evicted).
    pushed: u64,
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: VecDeque::with_capacity(capacity.max(1)),
            pushed: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
        self.pushed += 1;
    }

    /// Snapshots the current ring contents, oldest first.
    #[must_use]
    pub fn snapshot(&self, reason: &str) -> FlightDump {
        FlightDump {
            reason: reason.to_string(),
            total_events: self.pushed,
            events: self.ring.iter().cloned().collect(),
        }
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no event has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

/// A snapshot of the flight recorder taken at an incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was taken (`failsafe-engaged`, `panic`, ...).
    pub reason: String,
    /// Total events the bus ever saw (may exceed `events.len()`).
    pub total_events: u64,
    /// The retained tail of the event stream, oldest first.
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut r = FlightRecorder::new(3);
        for day in 0..5 {
            r.push(Event::DayStart { day });
        }
        assert_eq!(r.len(), 3);
        let dump = r.snapshot("test");
        assert_eq!(dump.total_events, 5);
        assert_eq!(
            dump.events,
            vec![
                Event::DayStart { day: 2 },
                Event::DayStart { day: 3 },
                Event::DayStart { day: 4 }
            ]
        );
    }

    #[test]
    fn dump_round_trips() {
        let mut r = FlightRecorder::default();
        r.push(Event::DayStart { day: 1 });
        let dump = r.snapshot("failsafe-engaged");
        let json = serde_json::to_string(&dump).unwrap();
        let back: FlightDump = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dump);
    }
}
