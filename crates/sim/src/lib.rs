//! Real-Sim and Smooth-Sim: the closed-loop simulators of §5.1, plus the
//! metrics, annual runner, validation harness, and world sweep behind every
//! figure in the paper's evaluation.
//!
//! The paper built two simulators: **Real-Sim** "simulates Hadoop on Parasol
//! with or without CoolAir", and **Smooth-Sim** simulates the same container
//! with a smoother, more controllable cooling infrastructure (fine-grained
//! fan ramp, variable-speed compressor). Here both are instances of
//! [`Simulation`]: the same closed loop of weather → container plant →
//! cluster → controller, differing only in the plant's
//! [`coolair_thermal::Infrastructure`].
//!
//! One important difference from the paper: the authors' simulators *were*
//! the learned Cooling Model ("to compute temperatures and humidity over
//! time, they repeatedly call the same code implementing CoolAir's Cooling
//! Predictor"). We instead simulate the plant with independent physics and
//! let CoolAir use its *learned* models for prediction — a strictly harder
//! and more honest setting, which also makes the Figure 5/6/7 validations
//! meaningful (learned model vs plant, controller vs plant).
//!
//! # Example: one baseline day in Newark
//!
//! ```no_run
//! use coolair_sim::{run_annual, AnnualConfig, SystemSpec};
//! use coolair_weather::Location;
//! use coolair_workload::TraceKind;
//!
//! let summary = run_annual(
//!     &SystemSpec::Baseline,
//!     &Location::newark(),
//!     TraceKind::Facebook,
//!     &AnnualConfig::default(),
//! );
//! println!("PUE = {:.2}", summary.pue());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annual;
mod engine;
mod episode;
mod faults;
mod fidelity;
pub mod jobs;
mod metrics;
mod model_plant;
mod multizone;
mod reliability;
mod scenario;
mod validate;
mod worldsweep;

pub use annual::{
    run_annual, run_annual_traced, run_annual_with_model, run_days_loaded, run_days_traced,
    train_for_location,
    AnnualConfig, SystemSpec,
};
pub use engine::{Container, DayOutput, MinuteSample, SimConfig, Simulation, SimController};
pub use episode::{Action, Episode, EpisodeSpec, Observation, Reward, StepResult};
pub use faults::{
    ActuatorFault, FaultKind, FaultPlan, FaultRates, FaultSpec, FaultWindow, SensorFault,
};
pub use fidelity::{day_fidelity, FidelityReport, FidelitySystem};
pub use model_plant::ModelPlant;
pub use multizone::{MultiZone, MultiZoneReport, ZoneSpec};
pub use reliability::{disk_reliability, ReliabilityParams, ReliabilityReport};
pub use scenario::Scenario;
pub use metrics::{AnnualSummary, DayRecord, POWER_DELIVERY_PUE};
pub use validate::{model_error_cdfs, ModelErrorReport};
pub use worldsweep::{
    sweep_locations, sweep_one, sweep_one_with_model, world_sweep, world_sweep_with, SweepReport,
    WorldPoint, WorldSweepConfig,
};
