//! Figure 6/7 fidelity comparison: the same controller driven by the
//! physics plant ("real") and by the learned-model simulator ("Real-Sim").
//!
//! §5.1 validates Real-Sim against real executions: "for the baseline
//! system, maximum temperatures, temperature variations, and cooling energy
//! are all within 8 % of the real execution. For CoolAir, these values are
//! within 15 %. In absolute terms, 89 % of all real baseline measurements
//! are within 2 °C of its simulation, while 70 % of the CoolAir measurements
//! are within 2 °C."

use coolair::{CoolAir, CoolAirConfig, CoolingModel, Version};
use coolair_thermal::{Infrastructure, PlantConfig, TksConfig, TksController};
use coolair_weather::{Forecaster, TmySeries};
use coolair_workload::{Cluster, ClusterConfig, Trace};
use serde::{Deserialize, Serialize};

use crate::engine::{DayOutput, SimConfig, SimController, Simulation};
use crate::model_plant::ModelPlant;

/// Agreement between a physics run and a model-driven run of the same day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Physics-plant day output (the "real" execution).
    pub physics: DayOutput,
    /// Model-plant day output (the "Real-Sim" execution).
    pub modeled: DayOutput,
    /// Fraction of minutes whose mean inlet temperatures agree within 2 °C.
    pub within_2c: f64,
    /// The same fraction after aligning the two series by their best
    /// cross-correlation lag within ±45 minutes. The baseline's
    /// closed/free-cooling limit cycle drifts in phase between the physics
    /// and the learned dynamics; the paper's pointwise 89 %/70 % numbers
    /// presume phase lock with the real trace.
    pub within_2c_aligned: f64,
    /// Relative error of the simulated maximum temperature.
    pub max_temp_rel_err: f64,
    /// Relative error of the simulated worst daily range.
    pub range_rel_err: f64,
    /// Relative error of the simulated cooling energy.
    pub cooling_rel_err: f64,
}

/// Which controller to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelitySystem {
    /// The extended-TKS baseline.
    Baseline,
    /// A CoolAir version.
    CoolAir(Version),
}

/// Runs `day` twice — once on the physics plant, once on the learned-model
/// plant — under the same controller configuration, and reports agreement.
#[must_use]
pub fn day_fidelity(
    system: FidelitySystem,
    model: &CoolingModel,
    tmy: &TmySeries,
    trace: &Trace,
    day: u64,
) -> FidelityReport {
    let engine = SimConfig { record_minutes: true, ..SimConfig::default() };

    let make_controller = || match system {
        FidelitySystem::Baseline => {
            SimController::Baseline(TksController::new(TksConfig::baseline()))
        }
        FidelitySystem::CoolAir(version) => SimController::CoolAir(Box::new(CoolAir::new(
            version,
            CoolAirConfig::default(),
            model.clone(),
            Forecaster::perfect(tmy.clone()),
            Infrastructure::Parasol,
        ))),
    };

    let mut physics_sim = Simulation::new(
        make_controller(),
        PlantConfig::parasol(),
        Cluster::new(ClusterConfig::parasol()),
        tmy.clone(),
        engine.clone(),
    );
    let physics = physics_sim.run_day(day, trace.jobs_for_day(day));

    let mut model_sim = Simulation::with_plant(
        make_controller(),
        ModelPlant::new(model.clone(), Infrastructure::Parasol),
        Cluster::new(ClusterConfig::parasol()),
        tmy.clone(),
        engine,
    );
    let modeled = model_sim.run_day(day, trace.jobs_for_day(day));

    let phys_series: Vec<f64> = physics.minutes.iter().map(|m| m.mean_inlet).collect();
    let modl_series: Vec<f64> = modeled.minutes.iter().map(|m| m.mean_inlet).collect();
    let n = phys_series.len().min(modl_series.len());
    #[allow(clippy::needless_range_loop)] // i indexes two series with a lag offset
    let within_frac = |lag: i64| -> f64 {
        if n == 0 {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            let j = i as i64 + lag;
            if j < 0 || j >= n as i64 {
                continue;
            }
            total += 1;
            if (phys_series[i] - modl_series[j as usize]).abs() <= 2.0 {
                hits += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };
    let within = within_frac(0);
    let aligned = (-45..=45)
        .map(within_frac)
        .fold(0.0_f64, f64::max);

    let max_phys = physics.record.sensor_max.iter().cloned().fold(f64::MIN, f64::max);
    let max_modl = modeled.record.sensor_max.iter().cloned().fold(f64::MIN, f64::max);
    // Relative errors on the Kelvin-free quantities the paper quotes, using
    // physics as truth. Temperatures are compared as offsets from 0 °C.
    let rel = |truth: f64, sim: f64| {
        if truth.abs() < 1e-9 {
            (sim - truth).abs()
        } else {
            (sim - truth).abs() / truth.abs()
        }
    };

    FidelityReport {
        within_2c: within,
        within_2c_aligned: aligned,
        max_temp_rel_err: rel(max_phys, max_modl),
        range_rel_err: rel(physics.record.worst_range(), modeled.record.worst_range()),
        cooling_rel_err: rel(physics.record.cooling_kwh, modeled.record.cooling_kwh),
        physics,
        modeled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair::{train_cooling_model, TrainingConfig};
    use coolair_weather::Location;
    use coolair_workload::facebook_trace;

    #[test]
    fn baseline_fidelity_matches_paper_band() {
        let tmy = TmySeries::generate(&Location::newark(), 11);
        let model = train_cooling_model(&tmy, &TrainingConfig::quick());
        let trace = facebook_trace(1);
        let report = day_fidelity(FidelitySystem::Baseline, &model, &tmy, &trace, 60);
        // Paper: baseline aggregates within 8% of the real execution.
        assert!(
            report.max_temp_rel_err < 0.10,
            "max-temp relative error {:.3}",
            report.max_temp_rel_err
        );
        assert!(
            report.range_rel_err < 0.20,
            "range relative error {:.3}",
            report.range_rel_err
        );
        assert!(
            report.cooling_rel_err < 0.30,
            "cooling-energy relative error {:.3}",
            report.cooling_rel_err
        );
        assert!(
            report.within_2c_aligned >= report.within_2c,
            "alignment can only help"
        );
    }
}
