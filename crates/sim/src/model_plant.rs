//! The paper's actual Real-Sim: a simulator whose *physics* is the learned
//! Cooling Model.
//!
//! §5.1: "To compute temperatures and humidity over time, they [Real-Sim and
//! Smooth-Sim] repeatedly call the same code implementing CoolAir's Cooling
//! Predictor." [`ModelPlant`] is that simulator: it exposes the same sensor
//! interface as the physics [`coolair_thermal::Plant`], but advances state
//! with the learned per-regime linear models. Comparing a controller driven
//! by the physics plant against the same controller driven by `ModelPlant`
//! reproduces the paper's Figure 6/7 validation ("89 % of all real baseline
//! measurements are within 2 °C of its simulation…").

use coolair::modeler::features::{humidity_features, temp_features};
use coolair::CoolingModel;
use coolair_thermal::{
    cooling_power, CoolingRegime, Infrastructure, ItLoad, ModelKey, OutsideConditions, PodId,
    SensorReadings,
};
use coolair_units::{
    psychro, AbsoluteHumidity, Celsius, RelativeHumidity, SimDuration, SimTime, Watts,
};

/// A model-driven container simulator (the paper's Real-Sim core).
#[derive(Debug)]
pub struct ModelPlant {
    model: CoolingModel,
    infra: Infrastructure,
    pod_temps: Vec<f64>,
    prev_temps: Vec<f64>,
    abs_humidity: f64,
    regime: CoolingRegime,
    prev_fan: f64,
    last_outside: OutsideConditions,
    last_it: ItLoad,
    /// Model step (the models are trained at 2-minute resolution).
    step: SimDuration,
    /// Time left until the next whole model step.
    carry: SimDuration,
}

impl ModelPlant {
    /// Creates a model plant at a 20 °C / 40 %RH interior.
    #[must_use]
    pub fn new(model: CoolingModel, infra: Infrastructure) -> Self {
        let pods = model.pods();
        let start_abs =
            psychro::absolute_humidity(Celsius::new(20.0), RelativeHumidity::new(40.0));
        ModelPlant {
            model,
            infra,
            pod_temps: vec![20.0; pods],
            prev_temps: vec![20.0; pods],
            abs_humidity: start_abs.grams_per_kg(),
            regime: CoolingRegime::Closed,
            prev_fan: 0.0,
            last_outside: OutsideConditions {
                temperature: Celsius::new(20.0),
                abs_humidity: start_abs,
            },
            last_it: ItLoad::uniform(pods, Watts::ZERO, 0.0),
            step: SimDuration::from_minutes(2),
            carry: SimDuration::ZERO,
        }
    }

    /// Number of pod sensors (cached from the model; no snapshot needed).
    #[must_use]
    pub fn pods(&self) -> usize {
        self.pod_temps.len()
    }

    /// Forces the interior to a uniform state.
    pub fn reset_interior(&mut self, temp: Celsius, rh: RelativeHumidity) {
        for t in self.pod_temps.iter_mut().chain(self.prev_temps.iter_mut()) {
            *t = temp.value();
        }
        self.abs_humidity = psychro::absolute_humidity(temp, rh).grams_per_kg();
    }

    /// Advances by `dt` under `commanded` cooling; model steps fire every
    /// 2 simulated minutes, accumulating shorter physics steps.
    pub fn step(
        &mut self,
        dt: SimDuration,
        outside: OutsideConditions,
        it: &ItLoad,
        commanded: CoolingRegime,
    ) {
        let target = self.infra.sanitize(commanded);
        self.carry += dt;
        self.last_outside = outside;
        self.last_it = it.clone();
        while self.carry >= self.step {
            self.carry = self.carry - self.step;
            self.advance_one(outside, it, target);
        }
    }

    fn advance_one(&mut self, outside: OutsideConditions, it: &ItLoad, target: CoolingRegime) {
        let key = ModelKey::for_step(self.regime.class(), target.class());
        let fan = target.fan_speed().fraction();
        // Below the 15 % training floor, interpolate between the closed
        // anchor (fan 0) and the floor — the predictor does the same.
        let floor = coolair_units::FanSpeed::PARASOL_MIN.fraction();
        let (fan_eval, low_fan_weight) =
            if matches!(target, CoolingRegime::FreeCooling { .. }) && fan > 0.0 && fan < floor {
                (floor, Some(fan / floor))
            } else {
                (fan, None)
            };
        let t_out = outside.temperature.value();
        let pods = self.pod_temps.len();
        let mut next = vec![0.0; pods];
        for (p, slot) in next.iter_mut().enumerate() {
            let x = temp_features(
                self.pod_temps[p],
                self.prev_temps[p],
                t_out,
                t_out,
                fan_eval,
                self.prev_fan,
                it.active_fraction,
            );
            let mut predicted = self.model.predict_temp(key, PodId(p), &x);
            if let Some(w) = low_fan_weight {
                let closed_key =
                    ModelKey::for_step(self.regime.class(), CoolingRegime::Closed.class());
                let xc = temp_features(
                    self.pod_temps[p],
                    self.prev_temps[p],
                    t_out,
                    t_out,
                    0.0,
                    self.prev_fan,
                    it.active_fraction,
                );
                let closed = self.model.predict_temp(closed_key, PodId(p), &xc);
                predicted = w * predicted + (1.0 - w) * closed;
            }
            // The same sanity clamp the Cooling Predictor applies.
            *slot = predicted.clamp(self.pod_temps[p] - 12.0, self.pod_temps[p] + 12.0);
        }
        let hx = humidity_features(
            self.abs_humidity,
            outside.abs_humidity.grams_per_kg(),
            fan,
        );
        self.abs_humidity = self.model.predict_humidity(key, &hx).clamp(0.0, 40.0);
        self.prev_temps = std::mem::take(&mut self.pod_temps);
        self.pod_temps = next;
        self.prev_fan = fan;
        self.regime = target;
    }

    /// The regime currently applied.
    #[must_use]
    pub fn applied_regime(&self) -> CoolingRegime {
        self.regime
    }

    /// Sensor snapshot in the same shape the physics plant produces.
    #[must_use]
    pub fn readings(&self, now: SimTime) -> SensorReadings {
        let mean =
            self.pod_temps.iter().sum::<f64>() / self.pod_temps.len() as f64;
        let cold_abs = AbsoluteHumidity::new(self.abs_humidity);
        SensorReadings {
            time: now,
            outside_temp: self.last_outside.temperature,
            outside_rh: psychro::relative_humidity(
                self.last_outside.temperature,
                self.last_outside.abs_humidity,
            ),
            outside_abs: self.last_outside.abs_humidity,
            pod_inlets: self.pod_temps.iter().map(|&t| Celsius::new(t)).collect(),
            cold_aisle_rh: psychro::relative_humidity(Celsius::new(mean), cold_abs),
            cold_aisle_abs: cold_abs,
            hot_aisle: Celsius::new(mean + 6.0),
            disk_temps: self
                .pod_temps
                .iter()
                .map(|&t| Celsius::new(t + 8.0))
                .collect(),
            regime: self.regime,
            cooling_power: cooling_power(self.regime, self.infra),
            it_power: self.last_it.total(),
            active_fraction: self.last_it.active_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair::{train_cooling_model, TrainingConfig};
    use coolair_units::FanSpeed;
    use coolair_weather::{Location, TmySeries};

    fn plant() -> ModelPlant {
        let tmy = TmySeries::generate(&Location::newark(), 11);
        let model = train_cooling_model(&tmy, &TrainingConfig::quick());
        ModelPlant::new(model, Infrastructure::Parasol)
    }

    fn outside(t: f64) -> OutsideConditions {
        OutsideConditions {
            temperature: Celsius::new(t),
            abs_humidity: psychro::absolute_humidity(
                Celsius::new(t),
                RelativeHumidity::new(60.0),
            ),
        }
    }

    #[test]
    fn model_plant_cools_under_free_cooling() {
        let mut mp = plant();
        mp.reset_interior(Celsius::new(30.0), RelativeHumidity::new(40.0));
        let it = ItLoad::uniform(4, Watts::new(125.0), 0.27);
        for _ in 0..30 {
            mp.step(
                SimDuration::from_minutes(2),
                outside(8.0),
                &it,
                CoolingRegime::free_cooling(FanSpeed::new(0.5).unwrap()),
            );
        }
        assert!(
            mp.readings(SimTime::EPOCH).mean_inlet().value() < 22.0,
            "learned dynamics should cool: {}",
            mp.readings(SimTime::EPOCH).mean_inlet()
        );
    }

    #[test]
    fn model_plant_warms_when_closed_under_load() {
        let mut mp = plant();
        mp.reset_interior(Celsius::new(16.0), RelativeHumidity::new(40.0));
        let it = ItLoad::uniform(4, Watts::new(450.0), 0.95);
        for _ in 0..60 {
            mp.step(SimDuration::from_minutes(2), outside(14.0), &it, CoolingRegime::Closed);
        }
        assert!(
            mp.readings(SimTime::EPOCH).mean_inlet().value() > 16.5,
            "closed under load should warm: {}",
            mp.readings(SimTime::EPOCH).mean_inlet()
        );
    }

    #[test]
    fn sub_step_accumulation() {
        let mut mp = plant();
        let it = ItLoad::uniform(4, Watts::new(125.0), 0.27);
        let before = mp.readings(SimTime::EPOCH).mean_inlet();
        // Seven 15-second steps: still less than one model step — no change.
        for _ in 0..7 {
            mp.step(SimDuration::from_secs(15), outside(0.0), &it, CoolingRegime::Closed);
        }
        assert_eq!(mp.readings(SimTime::EPOCH).mean_inlet(), before);
        // The eighth crosses the 2-minute boundary.
        mp.step(SimDuration::from_secs(15), outside(0.0), &it, CoolingRegime::Closed);
        let _ = mp.readings(SimTime::EPOCH);
    }
}
