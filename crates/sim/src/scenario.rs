//! Scenarios: the (weather-year × fault schedule × workload trace) triples
//! the robust tuner evaluates configurations against.
//!
//! A [`Scenario`] is a pure spec — climate archetype and weather seed,
//! fault generating parameters ([`FaultSpec`], not a materialised window
//! list), and workload shape — with a stable content digest. The digest is
//! half of the tuner's memo key (`(config_digest, scenario_digest)`), so
//! two scenarios that render the same JSON are the *same* scenario to the
//! artifact store, no matter which run produced them.

use coolair_runner::{stable_digest, Digest};
use coolair_weather::Location;
use coolair_workload::{ClusterConfig, TraceKind};
use serde::{Deserialize, Serialize};

use crate::annual::AnnualConfig;
use crate::faults::FaultSpec;

/// One point in scenario space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Climate archetype (which TMY generator the weather comes from).
    pub location: Location,
    /// Weather-year seed.
    pub weather_seed: u64,
    /// Fault-schedule generating parameters.
    pub fault: FaultSpec,
    /// Workload shape.
    pub trace: TraceKind,
    /// Trace generation seed.
    pub trace_seed: u64,
}

impl Scenario {
    /// A fault-free scenario at a location (severity 0, default seeds).
    #[must_use]
    pub fn nominal(location: Location) -> Self {
        Scenario {
            location,
            weather_seed: 42,
            fault: FaultSpec::none(),
            trace: TraceKind::Facebook,
            trace_seed: 1,
        }
    }

    /// Stable content digest over the full spec.
    #[must_use]
    pub fn digest(&self) -> Digest {
        stable_digest(self)
    }

    /// Short human label: `Singapore sev2.0#9 nutch`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{} sev{:.1}#{} {}",
            self.location.name(),
            self.fault.severity,
            self.fault.seed,
            match self.trace {
                TraceKind::Facebook => "fb",
                TraceKind::Nutch => "nutch",
            }
        )
    }

    /// The evaluation [`AnnualConfig`] for this scenario: `base` with the
    /// scenario's seeds applied and the fault spec materialised over the
    /// base's sampled days. Horizon, training, infrastructure and engine
    /// tuning stay with the base — they are evaluation-budget knobs, not
    /// scenario dimensions.
    #[must_use]
    pub fn annual(&self, base: &AnnualConfig) -> AnnualConfig {
        let mut cfg = base.clone();
        cfg.weather_seed = self.weather_seed;
        cfg.trace_seed = self.trace_seed;
        cfg.faults = self.fault.schedule(&cfg.sampled_days(), ClusterConfig::parasol().pods);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_every_dimension() {
        let base = Scenario::nominal(Location::newark());
        let mut seen = vec![base.digest()];
        let variants = [
            Scenario { location: Location::singapore(), ..base.clone() },
            Scenario { weather_seed: 43, ..base.clone() },
            Scenario { fault: FaultSpec::random(5, 2.0), ..base.clone() },
            Scenario { trace: TraceKind::Nutch, ..base.clone() },
            Scenario { trace_seed: 2, ..base.clone() },
        ];
        for v in variants {
            let d = v.digest();
            assert!(!seen.contains(&d), "collision at {}", v.label());
            seen.push(d);
        }
    }

    #[test]
    fn annual_applies_seeds_and_materialises_faults() {
        let sc = Scenario {
            fault: FaultSpec::random(9, 1.0),
            weather_seed: 7,
            trace_seed: 3,
            ..Scenario::nominal(Location::chad())
        };
        let base = AnnualConfig::quick();
        let cfg = sc.annual(&base);
        assert_eq!(cfg.weather_seed, 7);
        assert_eq!(cfg.trace_seed, 3);
        assert!(!cfg.faults.is_empty());
        assert_eq!(cfg.faults, sc.fault.schedule(&base.sampled_days(), 4));
        // Identical spec → identical config (purity).
        assert_eq!(sc.annual(&base), cfg);
    }

    #[test]
    fn serde_round_trip_preserves_digest() {
        let sc = Scenario {
            fault: FaultSpec::random(11, 2.5),
            trace: TraceKind::Nutch,
            ..Scenario::nominal(Location::phoenix())
        };
        let json = serde_json::to_string(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sc);
        assert_eq!(back.digest(), sc.digest());
    }
}
