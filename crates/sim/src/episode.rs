//! Gym-style episodes: the closed-loop simulator repackaged as a
//! deterministic, seedable reset/observe/act/step interface for learned
//! controllers.
//!
//! An [`EpisodeSpec`] pins everything that determines a trajectory — a
//! [`Scenario`] (climate archetype, weather seed, fault spec, workload
//! trace, trace seed), a base [`AnnualConfig`], the calendar span, and the
//! decision period — and has a stable content digest, which is what makes
//! daemon-side episode creation idempotent (`POST /episodes` keys the
//! registry by it). An [`Episode`] owns the same physics loop as
//! [`crate::Simulation::run_day`] — plant, cluster, TMY weather, fault
//! layer — but hands the *policy* decisions to the caller: each
//! [`Episode::step`] applies an [`Action`] (a TKS setpoint plus an
//! active-server target), advances one decision window, and returns the
//! next [`Observation`] and the window's [`Reward`].
//!
//! Actuation goes through a persistent [`TksController`]: the action sets
//! its setpoint and the TKS's own mode/compressor hysteresis picks the
//! cooling regime at the baseline control cadence, so a policy that always
//! outputs 30 °C and every server active reproduces the paper's baseline
//! behaviour. The controller (and the episode's observations) sense through
//! the fault layer; the reward samples the plant's ground truth, exactly
//! like the engine's metrics pass.
//!
//! Determinism: an episode is a pure function of its spec and the action
//! sequence. The observation is computed once per step boundary and cached
//! (repeated [`Episode::observe`] calls never advance fault-layer state),
//! so identical (spec, actions) pairs produce byte-identical trajectories —
//! the property `tests/learn_properties.rs` pins, locally and over the
//! daemon.

use coolair_runner::{stable_digest, Digest};
use coolair_thermal::{
    CoolingRegime, Infrastructure, ItLoad, OutsideConditions, Plant, PlantConfig, SensorReadings,
    TksConfig, TksController,
};
use coolair_units::{Celsius, SimDuration, SimTime, SECS_PER_HOUR};
use coolair_weather::{Location, TmySeries};
use coolair_workload::{Cluster, ClusterConfig, Job, Trace};
use serde::{Deserialize, Serialize};

use crate::annual::{build_trace, AnnualConfig};
use crate::faults::FaultPlan;
use crate::scenario::Scenario;

/// Lexicographic comparison slack, matching the tuner's score discipline.
const EPS: f64 = 1e-9;

/// Setpoint commands outside this band are clamped before reaching the TKS.
const SETPOINT_RANGE_C: (f64, f64) = (10.0, 40.0);

/// Everything that determines an episode's trajectory (given the actions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSpec {
    /// Climate, seeds, fault spec, and workload shape.
    pub scenario: Scenario,
    /// Base evaluation config (infrastructure, engine tuning). The
    /// scenario's seeds override the base's, and the fault spec is
    /// materialised over the episode's own days — see
    /// [`EpisodeSpec::effective_annual`].
    pub annual: AnnualConfig,
    /// First simulated calendar day (0–364).
    pub start_day: u64,
    /// Consecutive calendar days the episode spans (≥ 1). Warm-up runs
    /// once, before the first midnight; later days continue seamlessly.
    pub horizon_days: u64,
    /// How often the policy acts. Must be a positive multiple of the
    /// engine's physics step.
    pub decision_period: SimDuration,
}

impl EpisodeSpec {
    /// A fault-free one-day summer episode at a location, acting every
    /// 10 minutes (the baseline TKS control cadence).
    #[must_use]
    pub fn nominal(location: Location) -> Self {
        EpisodeSpec {
            scenario: Scenario::nominal(location),
            annual: AnnualConfig::quick(),
            start_day: 150,
            horizon_days: 1,
            decision_period: SimDuration::from_minutes(10),
        }
    }

    /// Like [`EpisodeSpec::nominal`] but with the weather and trace seeds
    /// derived from `seed` — the "seedable" constructor learners use.
    #[must_use]
    pub fn seeded(location: Location, seed: u64) -> Self {
        let mut spec = EpisodeSpec::nominal(location);
        spec.scenario.weather_seed = seed;
        spec.scenario.trace_seed = seed.wrapping_add(1);
        spec
    }

    /// Stable content digest over the full spec — the daemon's episode id.
    #[must_use]
    pub fn digest(&self) -> Digest {
        stable_digest(self)
    }

    /// The calendar days the episode spans.
    #[must_use]
    pub fn days(&self) -> Vec<u64> {
        (self.start_day..self.start_day + self.horizon_days).collect()
    }

    /// Number of decision windows in the episode (the final window is
    /// truncated at the horizon if the period does not divide it).
    #[must_use]
    pub fn steps(&self) -> u64 {
        let span = self.horizon_days * 24 * SECS_PER_HOUR;
        span.div_ceil(self.decision_period.as_secs().max(1))
    }

    /// The evaluation config the episode actually runs: the base with the
    /// scenario's seeds applied and the fault spec materialised over the
    /// episode's own days (not the base's stride sampling).
    #[must_use]
    pub fn effective_annual(&self) -> AnnualConfig {
        let mut cfg = self.annual.clone();
        cfg.weather_seed = self.scenario.weather_seed;
        cfg.trace_seed = self.scenario.trace_seed;
        cfg.faults = self.scenario.fault.schedule(&self.days(), ClusterConfig::parasol().pods);
        cfg
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns every problem found, `; `-joined.
    pub fn validate(&self) -> Result<(), String> {
        let mut problems = Vec::new();
        if self.horizon_days == 0 {
            problems.push("horizon_days must be >= 1".to_string());
        }
        if self.start_day + self.horizon_days > 365 {
            problems.push(format!(
                "episode spans days {}..{} beyond the 365-day year",
                self.start_day,
                self.start_day + self.horizon_days
            ));
        }
        let step = self.annual.engine.physics_step.as_secs();
        let period = self.decision_period.as_secs();
        if period == 0 || step == 0 || !period.is_multiple_of(step) {
            problems.push(format!(
                "decision_period ({period} s) must be a positive multiple of the physics step \
                 ({step} s)"
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("; "))
        }
    }
}

/// What the policy senses at a step boundary — the fault-corrupted sensor
/// view a real controller would see, flattened to plain numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Simulation time of the observation.
    pub time: SimTime,
    /// Fraction of the calendar day elapsed, in `[0, 1)`.
    pub day_fraction: f64,
    /// Outside temperature, °C.
    pub outside_temp_c: f64,
    /// Outside relative humidity, %.
    pub outside_rh_pct: f64,
    /// Warmest pod inlet (the TKS control sensor), °C.
    pub max_inlet_c: f64,
    /// Mean pod inlet, °C.
    pub mean_inlet_c: f64,
    /// Coolest pod inlet, °C.
    pub min_inlet_c: f64,
    /// Cold-aisle relative humidity, %.
    pub cold_aisle_rh_pct: f64,
    /// Cooling regime class: 0 closed, 1 free cooling, 2 AC.
    pub regime_code: u8,
    /// Free-cooling fan speed, % of max (0 when not free cooling).
    pub fan_pct: f64,
    /// AC compressor drive, % (0 when AC off).
    pub compressor_pct: f64,
    /// Cooling power draw, W.
    pub cooling_w: f64,
    /// IT power draw, W.
    pub it_w: f64,
    /// Fraction of servers active.
    pub active_fraction: f64,
    /// Current compute demand as a fraction of the server count.
    pub demand_fraction: f64,
}

/// What the policy commands for one decision window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Action {
    /// TKS setpoint, °C (clamped to 10–40 °C).
    pub setpoint_c: f64,
    /// Active-server target (clamped to `[covering_count, total_servers]`;
    /// the covering subset never sleeps, matching CoolAir's compute
    /// management floor).
    pub active_servers: usize,
}

impl Action {
    /// The paper-baseline action: 30 °C setpoint, every server active.
    #[must_use]
    pub fn baseline(total_servers: usize) -> Self {
        Action { setpoint_c: 30.0, active_servers: total_servers }
    }
}

/// One decision window's cost, as positive components. The episode reward
/// is their *negative lexicographic* pair: trajectory A beats B when A's
/// violation is lower, or ties (within `1e-9`) and A's energy is lower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reward {
    /// Thermal violation above the desired maximum, °C·min summed over pod
    /// sensors (ground truth, not the corrupted view).
    pub violation_cmin: f64,
    /// Total (cooling + IT) energy, kWh.
    pub energy_kwh: f64,
}

impl Reward {
    /// The zero cost.
    #[must_use]
    pub fn zero() -> Self {
        Reward { violation_cmin: 0.0, energy_kwh: 0.0 }
    }

    /// Accumulates another window's cost.
    pub fn accumulate(&mut self, other: &Reward) {
        self.violation_cmin += other.violation_cmin;
        self.energy_kwh += other.energy_kwh;
    }

    /// Lexicographic "lower cost wins": `true` when `self` strictly beats
    /// `other` — violation first, energy as the tie-break, ties within
    /// `1e-9` on both components are not an improvement.
    #[must_use]
    pub fn better_than(&self, other: &Reward) -> bool {
        if (self.violation_cmin - other.violation_cmin).abs() > EPS {
            return self.violation_cmin < other.violation_cmin;
        }
        self.energy_kwh < other.energy_kwh - EPS
    }
}

/// What one [`Episode::step`] returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepResult {
    /// Zero-based index of the completed decision window.
    pub step: u64,
    /// The observation at the window's end (the next decision boundary).
    pub observation: Observation,
    /// The window's cost (reward is its negation, lexicographically).
    pub reward: Reward,
    /// `true` once the horizon is exhausted; further steps are an error.
    pub done: bool,
}

/// A live episode: the closed loop of weather → plant → cluster with the
/// policy in the controller's seat. See the module docs for semantics.
#[derive(Debug)]
pub struct Episode {
    spec: EpisodeSpec,
    engine: crate::SimConfig,
    desired_max: Celsius,
    plant: Plant,
    cluster: Cluster,
    tks: TksController,
    tmy: TmySeries,
    trace: Trace,
    faults: FaultPlan,
    stale_inlets: Vec<Celsius>,
    regime: CoolingRegime,
    pending: Vec<Job>,
    next_job: usize,
    jobs_loaded_through: u64,
    active_target: usize,
    t: SimTime,
    end: SimTime,
    step_index: u64,
    done: bool,
    total: Reward,
    total_cooling_kwh: f64,
    total_it_kwh: f64,
    last_obs: Observation,
}

impl Episode {
    /// Builds the episode and simulates the warm-up (the engine's
    /// `warmup_hours` before the first midnight, run under the baseline
    /// action so the plant state is independent of the policy), leaving it
    /// at the first decision boundary with an observation ready.
    ///
    /// # Errors
    ///
    /// Returns the spec's validation problems.
    pub fn new(spec: &EpisodeSpec) -> Result<Episode, String> {
        spec.validate()?;
        let cfg = spec.effective_annual();
        let tmy = TmySeries::generate(&spec.scenario.location, cfg.weather_seed);
        let trace = build_trace(spec.scenario.trace, &cfg);
        let mut plant_config = match cfg.infrastructure {
            Infrastructure::Parasol => PlantConfig::parasol(),
            Infrastructure::Smooth => PlantConfig::smooth(),
        };
        plant_config.adiabatic_effectiveness = cfg.adiabatic;
        if let Some(v) = cfg.ac_condenser_derate_per_c {
            plant_config.ac_condenser_derate_per_c = v;
        }
        if let Some(v) = cfg.ac_latent_factor {
            plant_config.ac_latent_factor = v;
        }
        let mut cluster_config = ClusterConfig::parasol();
        if let Some(covering) = cfg.covering_count {
            cluster_config.covering_count = covering.clamp(1, cluster_config.total_servers);
        }
        let total_servers = cluster_config.total_servers;

        let midnight = SimTime::from_days(spec.start_day);
        let warmup_start = SimTime::from_secs(
            midnight.as_secs().saturating_sub(cfg.engine.warmup_hours * SECS_PER_HOUR),
        );
        let mut pending = trace.jobs_for_day(spec.start_day);
        pending.sort_by_key(|j| j.submit);

        let mut episode = Episode {
            engine: cfg.engine.clone(),
            desired_max: cfg.engine.desired_max,
            plant: Plant::new(plant_config),
            cluster: Cluster::new(cluster_config),
            tks: TksController::new(TksConfig::baseline()),
            tmy,
            trace,
            faults: cfg.faults.clone(),
            stale_inlets: Vec::new(),
            regime: CoolingRegime::Closed,
            pending,
            next_job: 0,
            jobs_loaded_through: spec.start_day,
            active_target: total_servers,
            t: warmup_start,
            end: midnight + SimDuration::from_days(spec.horizon_days),
            step_index: 0,
            done: false,
            total: Reward::zero(),
            total_cooling_kwh: 0.0,
            total_it_kwh: 0.0,
            last_obs: Observation {
                time: warmup_start,
                day_fraction: 0.0,
                outside_temp_c: 0.0,
                outside_rh_pct: 0.0,
                max_inlet_c: 0.0,
                mean_inlet_c: 0.0,
                min_inlet_c: 0.0,
                cold_aisle_rh_pct: 0.0,
                regime_code: 0,
                fan_pct: 0.0,
                compressor_pct: 0.0,
                cooling_w: 0.0,
                it_w: 0.0,
                active_fraction: 0.0,
                demand_fraction: 0.0,
            },
            spec: spec.clone(),
        };
        // Warm-up: baseline action, no reward recorded.
        let (_v, _c, _i) = episode.advance_to(midnight, false);
        episode.last_obs = episode.observe_now();
        Ok(episode)
    }

    /// The spec the episode was built from.
    #[must_use]
    pub fn spec(&self) -> &EpisodeSpec {
        &self.spec
    }

    /// The observation at the current decision boundary. Cached: calling
    /// this repeatedly never advances the simulation or the fault layer.
    #[must_use]
    pub fn observe(&self) -> &Observation {
        &self.last_obs
    }

    /// Decision windows completed so far.
    #[must_use]
    pub fn steps_taken(&self) -> u64 {
        self.step_index
    }

    /// `true` once the horizon is exhausted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Cumulative cost over all completed windows.
    #[must_use]
    pub fn total_reward(&self) -> Reward {
        self.total
    }

    /// Cumulative cooling energy, kWh.
    #[must_use]
    pub fn cooling_kwh(&self) -> f64 {
        self.total_cooling_kwh
    }

    /// Cumulative IT energy, kWh.
    #[must_use]
    pub fn it_kwh(&self) -> f64 {
        self.total_it_kwh
    }

    /// Size of the always-on covering subset — the action's active-server
    /// floor.
    #[must_use]
    pub fn covering_servers(&self) -> usize {
        self.cluster.config().covering_count
    }

    /// Total server count — the action's active-server ceiling.
    #[must_use]
    pub fn total_servers(&self) -> usize {
        self.cluster.config().total_servers
    }

    /// Applies `action` for one decision window and advances the loop,
    /// returning the window's cost and the next observation.
    ///
    /// # Errors
    ///
    /// Returns an error when the episode is already done.
    pub fn step(&mut self, action: &Action) -> Result<StepResult, String> {
        if self.done {
            return Err("episode is done".to_string());
        }
        let (lo, hi) = SETPOINT_RANGE_C;
        self.tks.set_setpoint(Celsius::new(action.setpoint_c.clamp(lo, hi)));
        let covering = self.cluster.config().covering_count;
        let total = self.cluster.config().total_servers;
        self.active_target = action.active_servers.clamp(covering.max(1), total);

        let window_end =
            SimTime::from_secs((self.t + self.spec.decision_period).as_secs().min(self.end.as_secs()));
        let (violation_cmin, cooling_kwh, it_kwh) = self.advance_to(window_end, true);

        let reward = Reward { violation_cmin, energy_kwh: cooling_kwh + it_kwh };
        self.total.accumulate(&reward);
        self.total_cooling_kwh += cooling_kwh;
        self.total_it_kwh += it_kwh;
        let step = self.step_index;
        self.step_index += 1;
        self.done = self.t >= self.end;
        self.last_obs = self.observe_now();
        Ok(StepResult { step, observation: self.last_obs.clone(), reward, done: self.done })
    }

    /// Advances the physics loop to `until`, mirroring
    /// [`crate::Simulation::run_day`]'s per-tick order (compute management →
    /// sensing/control → metrics → energy → actuator faults → plant step).
    /// Returns the recorded (violation °C·min, cooling kWh, IT kWh); all
    /// zero when `record` is false (warm-up).
    fn advance_to(&mut self, until: SimTime, record: bool) -> (f64, f64, f64) {
        let mut violation = 0.0;
        let mut cooling_j = 0.0;
        let mut it_j = 0.0;
        let day = SimDuration::from_days(1);
        while self.t < until {
            let t = self.t;
            // Crossing a midnight inside the horizon loads that day's jobs.
            if (t % day).is_zero() {
                let day_index = t.as_secs() / day.as_secs();
                if day_index > self.jobs_loaded_through
                    && day_index < self.spec.start_day + self.spec.horizon_days
                {
                    self.jobs_loaded_through = day_index;
                    let mut jobs = self.trace.jobs_for_day(day_index);
                    jobs.sort_by_key(|j| j.submit);
                    // Later days only submit later, so the pending list
                    // stays sorted and `next_job` stays valid.
                    self.pending.extend(jobs);
                }
            }

            if (t % self.engine.compute_period).is_zero() {
                while self.next_job < self.pending.len()
                    && self.pending[self.next_job].submit <= t
                {
                    let job = self.pending[self.next_job].clone();
                    self.next_job += 1;
                    let earliest = job.submit;
                    self.cluster.submit_with_start(job, earliest);
                }
                self.cluster.set_active_target(self.active_target, None);
                self.cluster.step(t, self.engine.compute_period);
            }

            if (t % self.engine.baseline_control).is_zero() {
                let readings = self.corrupted_readings(t);
                self.regime = self.tks.decide(&readings);
            }

            if record && (t % self.engine.sample_period).is_zero() {
                let truth = self.plant.readings(t);
                for inlet in &truth.pod_inlets {
                    violation += (inlet.value() - self.desired_max.value()).max(0.0);
                }
            }

            let outside = OutsideConditions {
                temperature: self.tmy.temperature_at(t),
                abs_humidity: self.tmy.absolute_humidity_at(t),
            };
            let it = ItLoad {
                pod_power: self.cluster.pod_power(),
                active_fraction: self.cluster.active_fraction(),
            };
            if record {
                let dt_s = self.engine.physics_step.as_secs() as f64;
                cooling_j += self.plant.readings(t).cooling_power.value() * dt_s;
                it_j += it.total().value() * dt_s;
            }
            let actual = self.faults.apply_actuator(t, self.regime);
            self.plant.step(self.engine.physics_step, outside, &it, actual);
            self.t += self.engine.physics_step;
        }
        (violation, cooling_j / 3.6e6, it_j / 3.6e6)
    }

    /// The fault-corrupted sensor view at the current time (advances the
    /// fault layer's stale-sensor memory — call once per boundary).
    fn corrupted_readings(&mut self, t: SimTime) -> SensorReadings {
        let truth = self.plant.readings(t);
        self.faults.corrupt_readings(truth, &mut self.stale_inlets)
    }

    fn observe_now(&mut self) -> Observation {
        let t = self.t;
        let r = self.corrupted_readings(t);
        let total = self.cluster.config().total_servers as f64;
        let regime_code = match r.regime {
            CoolingRegime::Closed => 0,
            CoolingRegime::FreeCooling { .. } => 1,
            CoolingRegime::Ac { .. } => 2,
        };
        Observation {
            time: t,
            day_fraction: (t.as_secs() % (24 * SECS_PER_HOUR)) as f64
                / (24 * SECS_PER_HOUR) as f64,
            outside_temp_c: r.outside_temp.value(),
            outside_rh_pct: r.outside_rh.percent(),
            max_inlet_c: r.max_inlet().value(),
            mean_inlet_c: r.mean_inlet().value(),
            min_inlet_c: r.min_inlet().value(),
            cold_aisle_rh_pct: r.cold_aisle_rh.percent(),
            regime_code,
            fan_pct: r.regime.fan_speed().percent(),
            compressor_pct: r.regime.compressor() * 100.0,
            cooling_w: r.cooling_power.value(),
            it_w: r.it_power.value(),
            active_fraction: r.active_fraction,
            demand_fraction: self.cluster.demand(t) as f64 / total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;

    fn hourly_spec(location: Location) -> EpisodeSpec {
        EpisodeSpec {
            decision_period: SimDuration::from_minutes(60),
            ..EpisodeSpec::nominal(location)
        }
    }

    fn run_fixed(spec: &EpisodeSpec, action: &Action) -> Vec<StepResult> {
        let mut ep = Episode::new(spec).expect("valid spec");
        let mut traj = Vec::new();
        while !ep.is_done() {
            traj.push(ep.step(action).expect("not done"));
        }
        traj
    }

    #[test]
    fn digest_separates_every_dimension() {
        let base = EpisodeSpec::nominal(Location::newark());
        let mut seen = vec![base.digest()];
        let variants = [
            EpisodeSpec { start_day: 151, ..base.clone() },
            EpisodeSpec { horizon_days: 2, ..base.clone() },
            EpisodeSpec {
                decision_period: SimDuration::from_minutes(30),
                ..base.clone()
            },
            EpisodeSpec::seeded(Location::newark(), 9),
            EpisodeSpec {
                scenario: Scenario {
                    fault: FaultSpec::random(3, 2.0),
                    ..base.scenario.clone()
                },
                ..base.clone()
            },
        ];
        for v in variants {
            let d = v.digest();
            assert!(!seen.contains(&d), "digest collision");
            seen.push(d);
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut spec = EpisodeSpec::nominal(Location::newark());
        spec.horizon_days = 0;
        assert!(spec.validate().is_err());
        let mut spec = EpisodeSpec::nominal(Location::newark());
        spec.start_day = 365;
        assert!(spec.validate().is_err());
        let mut spec = EpisodeSpec::nominal(Location::newark());
        spec.decision_period = SimDuration::from_secs(20); // not a 15 s multiple
        assert!(spec.validate().is_err());
        assert!(EpisodeSpec::nominal(Location::newark()).validate().is_ok());
    }

    #[test]
    fn baseline_actions_produce_sane_trajectory() {
        let spec = hourly_spec(Location::newark());
        let traj = run_fixed(&spec, &Action::baseline(64));
        assert_eq!(traj.len() as u64, spec.steps());
        assert_eq!(traj.len(), 24);
        assert!(traj.iter().take(23).all(|s| !s.done));
        assert!(traj.last().unwrap().done);
        let total_kwh: f64 = traj.iter().map(|s| s.reward.energy_kwh).sum();
        assert!(total_kwh > 10.0, "a loaded day costs energy, got {total_kwh} kWh");
        for s in &traj {
            assert!(s.reward.violation_cmin >= 0.0);
            assert!(s.observation.max_inlet_c > 0.0 && s.observation.max_inlet_c < 60.0);
        }
    }

    #[test]
    fn same_spec_and_actions_give_byte_identical_trajectories() {
        let spec = EpisodeSpec {
            scenario: Scenario {
                fault: FaultSpec::random(7, 1.5),
                ..Scenario::nominal(Location::newark())
            },
            ..hourly_spec(Location::newark())
        };
        // A varying action sequence, fixed up front.
        let actions: Vec<Action> = (0..spec.steps())
            .map(|i| Action {
                setpoint_c: 26.0 + (i % 5) as f64,
                active_servers: 8 + (i as usize * 7) % 57,
            })
            .collect();
        let run = || {
            let mut ep = Episode::new(&spec).unwrap();
            let mut out = Vec::new();
            for a in &actions {
                out.push(ep.step(a).unwrap());
            }
            serde_json::to_string(&out).unwrap()
        };
        assert_eq!(run(), run(), "trajectories must be byte-identical");
    }

    #[test]
    fn observe_is_idempotent() {
        let spec = hourly_spec(Location::newark());
        let mut ep = Episode::new(&spec).unwrap();
        let a = ep.observe().clone();
        let b = ep.observe().clone();
        assert_eq!(a, b);
        let step = ep.step(&Action::baseline(64)).unwrap();
        assert_eq!(&step.observation, ep.observe());
    }

    #[test]
    fn colder_setpoint_spends_more_cooling_energy() {
        let spec = hourly_spec(Location::chad()); // hot climate: the AC works
        let cold = run_fixed(&spec, &Action { setpoint_c: 24.0, active_servers: 64 });
        let warm = run_fixed(&spec, &Action { setpoint_c: 34.0, active_servers: 64 });
        let cold_kwh: f64 = cold.iter().map(|s| s.reward.energy_kwh).sum();
        let warm_kwh: f64 = warm.iter().map(|s| s.reward.energy_kwh).sum();
        assert!(
            cold_kwh > warm_kwh,
            "24 °C setpoint should cost more than 34 °C ({cold_kwh} vs {warm_kwh} kWh)"
        );
    }

    #[test]
    fn stepping_a_done_episode_errors() {
        let spec = hourly_spec(Location::newark());
        let mut ep = Episode::new(&spec).unwrap();
        while !ep.is_done() {
            ep.step(&Action::baseline(64)).unwrap();
        }
        assert!(ep.step(&Action::baseline(64)).is_err());
    }

    #[test]
    fn multi_day_episode_spans_and_loads_every_day() {
        let spec = EpisodeSpec {
            horizon_days: 2,
            decision_period: SimDuration::from_minutes(240),
            ..EpisodeSpec::nominal(Location::newark())
        };
        let traj = run_fixed(&spec, &Action::baseline(64));
        assert_eq!(traj.len(), 12, "2 days / 4 h windows");
        // Both days carry workload: IT energy flows in late windows too.
        let late_kwh: f64 = traj[6..].iter().map(|s| s.reward.energy_kwh).sum();
        assert!(late_kwh > 5.0, "day 2 must be loaded, got {late_kwh} kWh");
    }

    #[test]
    fn reward_comparison_is_lexicographic() {
        let a = Reward { violation_cmin: 1.0, energy_kwh: 100.0 };
        let b = Reward { violation_cmin: 2.0, energy_kwh: 1.0 };
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        let c = Reward { violation_cmin: 1.0, energy_kwh: 99.0 };
        assert!(c.better_than(&a));
        assert!(!a.better_than(&a), "a tie is not an improvement");
    }
}
