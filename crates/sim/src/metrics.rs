//! Evaluation metrics (§5.2).

use serde::{Deserialize, Serialize};

/// Power-delivery losses of Parasol, in PUE terms (§5.2, Figure 10:
/// "including 0.08 for power delivery").
pub const POWER_DELIVERY_PUE: f64 = 0.08;

/// Metrics of one simulated day under one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayRecord {
    /// The simulated (calendar) day index.
    pub day: u64,
    /// Per-sensor minimum inlet temperature over the day, °C.
    pub sensor_min: Vec<f64>,
    /// Per-sensor maximum inlet temperature over the day, °C.
    pub sensor_max: Vec<f64>,
    /// Sum over all sensor readings of °C above the desired maximum
    /// (readings at or below it contribute 0).
    pub violation_sum: f64,
    /// Number of sensor readings taken.
    pub readings: u64,
    /// Cooling energy for the day, kWh.
    pub cooling_kwh: f64,
    /// IT energy for the day, kWh.
    pub it_kwh: f64,
    /// Largest observed hour-over-hour temperature change, °C/h.
    pub max_rate_c_per_hour: f64,
    /// Fraction of samples with cold-aisle RH above the 80 % limit.
    pub rh_violation_fraction: f64,
    /// Outside temperature range over the day, °C.
    pub outside_range: f64,
    /// Jobs completed during the day.
    pub jobs_completed: u64,
    /// Disk power cycles accumulated during the day.
    pub power_cycles: u64,
    /// Sampled minutes with at least one injected fault active.
    pub fault_minutes: u64,
    /// Minutes the supervisor spent outside its `Normal` mode (0 for
    /// unsupervised systems).
    pub degraded_minutes: u64,
    /// Minutes with the hard overtemp failsafe engaged.
    pub failsafe_minutes: u64,
    /// Supervisor ladder transitions plus failsafe engagements.
    pub fallback_transitions: u64,
    /// Pod-inlet readings the supervisor replaced by imputation.
    pub imputed_readings: u64,
}

impl DayRecord {
    /// The worst sensor's daily temperature range (§5.2: "we measure the
    /// daily variation for each sensor as the difference between its
    /// maximum and minimum readings. From these variations, we select the
    /// worst sensor variation for each day").
    #[must_use]
    pub fn worst_range(&self) -> f64 {
        self.sensor_max
            .iter()
            .zip(self.sensor_min.iter())
            .map(|(hi, lo)| hi - lo)
            .fold(0.0, f64::max)
    }

    /// Mean violation per reading, °C.
    #[must_use]
    pub fn avg_violation(&self) -> f64 {
        if self.readings == 0 {
            0.0
        } else {
            self.violation_sum / self.readings as f64
        }
    }
}

/// Year-long results for one system at one location.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnnualSummary {
    days: Vec<DayRecord>,
}

impl AnnualSummary {
    /// Wraps a set of day records.
    #[must_use]
    pub fn new(days: Vec<DayRecord>) -> Self {
        AnnualSummary { days }
    }

    /// The per-day records.
    #[must_use]
    pub fn days(&self) -> &[DayRecord] {
        &self.days
    }

    /// Number of simulated days.
    #[must_use]
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// `true` when no days were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Average of the worst daily sensor ranges (the Figure 9 bars).
    #[must_use]
    pub fn avg_worst_range(&self) -> f64 {
        if self.days.is_empty() {
            return 0.0;
        }
        self.days.iter().map(DayRecord::worst_range).sum::<f64>() / self.days.len() as f64
    }

    /// The largest worst daily range over the year (the Figure 9 whisker
    /// tops — "the maximum ranges are important because they represent an
    /// upper-bound on how variable a system is").
    #[must_use]
    pub fn max_worst_range(&self) -> f64 {
        self.days.iter().map(DayRecord::worst_range).fold(0.0, f64::max)
    }

    /// The smallest worst daily range over the year (Figure 9 whisker
    /// bottoms).
    #[must_use]
    pub fn min_worst_range(&self) -> f64 {
        self.days.iter().map(DayRecord::worst_range).fold(f64::INFINITY, f64::min)
    }

    /// Average temperature violation per sensor reading over the year, °C
    /// (the Figure 8 bars).
    #[must_use]
    pub fn avg_violation(&self) -> f64 {
        let readings: u64 = self.days.iter().map(|d| d.readings).sum();
        if readings == 0 {
            return 0.0;
        }
        self.days.iter().map(|d| d.violation_sum).sum::<f64>() / readings as f64
    }

    /// Yearly PUE including power-delivery losses (the Figure 10 bars).
    #[must_use]
    pub fn pue(&self) -> f64 {
        let it: f64 = self.days.iter().map(|d| d.it_kwh).sum();
        let cooling: f64 = self.days.iter().map(|d| d.cooling_kwh).sum();
        if it <= 0.0 {
            return 1.0 + POWER_DELIVERY_PUE;
        }
        (it + cooling) / it + POWER_DELIVERY_PUE
    }

    /// Total cooling energy, kWh (scaled from the sampled days to a full
    /// year when the year was subsampled — callers that simulate 52 of 365
    /// days get the 52-day total here).
    #[must_use]
    pub fn cooling_kwh(&self) -> f64 {
        self.days.iter().map(|d| d.cooling_kwh).sum()
    }

    /// Total IT energy, kWh.
    #[must_use]
    pub fn it_kwh(&self) -> f64 {
        self.days.iter().map(|d| d.it_kwh).sum()
    }

    /// Average outside daily range, °C (the Figure 9 "Outside" bars).
    #[must_use]
    pub fn avg_outside_range(&self) -> f64 {
        if self.days.is_empty() {
            return 0.0;
        }
        self.days.iter().map(|d| d.outside_range).sum::<f64>() / self.days.len() as f64
    }

    /// Maximum outside daily range, °C.
    #[must_use]
    pub fn max_outside_range(&self) -> f64 {
        self.days.iter().map(|d| d.outside_range).fold(0.0, f64::max)
    }

    /// Largest observed temperature-change rate, °C/h.
    #[must_use]
    pub fn max_rate(&self) -> f64 {
        self.days.iter().map(|d| d.max_rate_c_per_hour).fold(0.0, f64::max)
    }

    /// Fraction of samples violating the RH limit, averaged over days.
    #[must_use]
    pub fn rh_violation_fraction(&self) -> f64 {
        if self.days.is_empty() {
            return 0.0;
        }
        self.days.iter().map(|d| d.rh_violation_fraction).sum::<f64>() / self.days.len() as f64
    }

    /// Total disk power cycles.
    #[must_use]
    pub fn power_cycles(&self) -> u64 {
        self.days.iter().map(|d| d.power_cycles).sum()
    }

    /// Total jobs completed.
    #[must_use]
    pub fn jobs_completed(&self) -> u64 {
        self.days.iter().map(|d| d.jobs_completed).sum()
    }

    /// Total temperature violation over the year, °C·min (each sampled
    /// sensor-minute contributes its degrees above the desired maximum) —
    /// the resilience headline number of the fault experiments.
    #[must_use]
    pub fn total_violation(&self) -> f64 {
        self.days.iter().map(|d| d.violation_sum).sum()
    }

    /// Total sampled minutes with at least one injected fault active.
    #[must_use]
    pub fn fault_minutes(&self) -> u64 {
        self.days.iter().map(|d| d.fault_minutes).sum()
    }

    /// Total minutes spent in a degraded supervisor mode.
    #[must_use]
    pub fn degraded_minutes(&self) -> u64 {
        self.days.iter().map(|d| d.degraded_minutes).sum()
    }

    /// Total minutes with the hard failsafe engaged.
    #[must_use]
    pub fn failsafe_minutes(&self) -> u64 {
        self.days.iter().map(|d| d.failsafe_minutes).sum()
    }

    /// Total supervisor mode transitions.
    #[must_use]
    pub fn fallback_transitions(&self) -> u64 {
        self.days.iter().map(|d| d.fallback_transitions).sum()
    }

    /// Total imputed pod-inlet readings.
    #[must_use]
    pub fn imputed_readings(&self) -> u64 {
        self.days.iter().map(|d| d.imputed_readings).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(day: u64, min: &[f64], max: &[f64], viol: f64, n: u64, cool: f64, it: f64) -> DayRecord {
        DayRecord {
            day,
            sensor_min: min.to_vec(),
            sensor_max: max.to_vec(),
            violation_sum: viol,
            readings: n,
            cooling_kwh: cool,
            it_kwh: it,
            max_rate_c_per_hour: 5.0,
            rh_violation_fraction: 0.0,
            outside_range: 10.0,
            jobs_completed: 100,
            power_cycles: 2,
            fault_minutes: 0,
            degraded_minutes: 0,
            failsafe_minutes: 0,
            fallback_transitions: 0,
            imputed_readings: 0,
        }
    }

    #[test]
    fn worst_range_picks_worst_sensor() {
        let d = day(0, &[20.0, 18.0, 22.0], &[25.0, 29.0, 24.0], 0.0, 100, 1.0, 10.0);
        assert_eq!(d.worst_range(), 11.0);
    }

    #[test]
    fn summary_statistics() {
        let s = AnnualSummary::new(vec![
            day(0, &[20.0], &[28.0], 10.0, 100, 2.0, 20.0),
            day(7, &[22.0], &[26.0], 0.0, 100, 1.0, 20.0),
        ]);
        assert_eq!(s.avg_worst_range(), 6.0);
        assert_eq!(s.max_worst_range(), 8.0);
        assert_eq!(s.min_worst_range(), 4.0);
        assert!((s.avg_violation() - 0.05).abs() < 1e-12);
        // PUE = (40+3)/40 + 0.08 = 1.155.
        assert!((s.pue() - 1.155).abs() < 1e-12);
        assert_eq!(s.cooling_kwh(), 3.0);
        assert_eq!(s.power_cycles(), 4);
        assert_eq!(s.jobs_completed(), 200);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = AnnualSummary::default();
        assert_eq!(s.avg_worst_range(), 0.0);
        assert_eq!(s.avg_violation(), 0.0);
        assert!((s.pue() - 1.08).abs() < 1e-12);
    }
}
