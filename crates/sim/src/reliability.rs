//! Disk-reliability impact model.
//!
//! The paper's entire motivation is hardware (especially disk) reliability:
//! Sankar et al. found absolute disk temperature drives failures
//! (Arrhenius-like), El-Sayed et al. found wide *temporal variation*
//! increases sector errors, and §4.2 bounds power-cycle wear against the
//! 300 000-cycle load/unload budget. This module turns an
//! [`AnnualSummary`] into the reliability factors those studies measure, so
//! the management systems can be compared in the currency the paper cares
//! about, not just degrees.
//!
//! The factors are *relative* annualised failure-rate multipliers against a
//! disk held at the reference temperature with no variation — the same way
//! the cited studies report their results.

use serde::{Deserialize, Serialize};

use crate::metrics::AnnualSummary;

/// Parameters of the reliability model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityParams {
    /// Arrhenius activation energy, eV (0.4–0.5 eV spans the values used
    /// for commodity drives; Sankar et al. report this range).
    pub activation_energy_ev: f64,
    /// Reference disk temperature, °C (multiplier 1.0 at this temperature).
    pub reference_disk_temp: f64,
    /// Typical disk-over-inlet offset, °C (Figure 1 shows ~8–12 °C at
    /// 50 % utilisation).
    pub disk_over_inlet: f64,
    /// Fractional increase in error rate per °C of *daily* temperature
    /// range beyond `benign_range` (El-Sayed et al.: variability raised
    /// sector errors "more significantly and consistently" than absolute
    /// temperature).
    pub variation_slope_per_c: f64,
    /// Daily range below which variation is considered benign, °C.
    pub benign_range: f64,
    /// Load/unload cycle budget over the disk's service life (§4.2:
    /// "at least 300,000 times without failure").
    pub cycle_budget: f64,
    /// Service life used for the cycle-budget rate, years (§4.2: 4 years).
    pub service_years: f64,
    /// Number of disks sharing the summary's power-cycle count (Parasol:
    /// 64 servers, one disk each).
    pub disks: u64,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            activation_energy_ev: 0.46,
            reference_disk_temp: 38.0,
            disk_over_inlet: 10.0,
            variation_slope_per_c: 0.05,
            benign_range: 4.0,
            cycle_budget: 300_000.0,
            service_years: 4.0,
            disks: 64,
        }
    }
}

/// The reliability impact of one system's year at one location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Arrhenius failure-rate multiplier from absolute disk temperature
    /// (time-weighted across days; 1.0 = reference temperature).
    pub arrhenius_factor: f64,
    /// Multiplier from daily temperature variation (1.0 = benign).
    pub variation_factor: f64,
    /// Combined multiplier (product — the studies treat the effects as
    /// independent).
    pub combined_factor: f64,
    /// Fraction of the lifetime power-cycle budget the year consumed
    /// (should stay ≤ 1/service_years ≈ 0.25).
    pub cycle_budget_fraction: f64,
    /// Mean disk temperature used, °C.
    pub mean_disk_temp: f64,
    /// Mean worst daily range used, °C.
    pub mean_daily_range: f64,
}

const BOLTZMANN_EV: f64 = 8.617e-5;

/// Evaluates the reliability impact of a simulated year.
///
/// The summary's sensor extremes are inlet temperatures; disk temperatures
/// add the configured offset. Days are weighted equally (each sampled day
/// stands for one week).
#[must_use]
pub fn disk_reliability(summary: &AnnualSummary, params: &ReliabilityParams) -> ReliabilityReport {
    if summary.is_empty() {
        return ReliabilityReport {
            arrhenius_factor: 1.0,
            variation_factor: 1.0,
            combined_factor: 1.0,
            cycle_budget_fraction: 0.0,
            mean_disk_temp: params.reference_disk_temp,
            mean_daily_range: 0.0,
        };
    }

    // Arrhenius factor averaged over days (each day's mean inlet ≈ midpoint
    // of its per-sensor extremes, averaged across sensors).
    let mut factor_sum = 0.0;
    let mut disk_temp_sum = 0.0;
    for day in summary.days() {
        // A day without any sensor extremes (e.g. total sensor dropout)
        // contributes the reference temperature instead of dividing by zero.
        let mean_inlet: f64 = if day.sensor_min.is_empty() {
            params.reference_disk_temp - params.disk_over_inlet
        } else {
            day.sensor_min
                .iter()
                .zip(day.sensor_max.iter())
                .map(|(lo, hi)| 0.5 * (lo + hi))
                .sum::<f64>()
                / day.sensor_min.len() as f64
        };
        let disk_t = mean_inlet + params.disk_over_inlet;
        let t_k = disk_t + 273.15;
        let ref_k = params.reference_disk_temp + 273.15;
        let f = (params.activation_energy_ev / BOLTZMANN_EV * (1.0 / ref_k - 1.0 / t_k)).exp();
        factor_sum += f;
        disk_temp_sum += disk_t;
    }
    let arrhenius_factor = factor_sum / summary.len() as f64;
    let mean_disk_temp = disk_temp_sum / summary.len() as f64;

    let mean_daily_range = summary.avg_worst_range();
    let variation_factor =
        1.0 + params.variation_slope_per_c * (mean_daily_range - params.benign_range).max(0.0);

    // Power cycles: the sampled days stand for the full year, spread over
    // the configured disk population.
    let scale = 365.0 / summary.len() as f64;
    let yearly_cycles = summary.power_cycles() as f64 * scale / params.disks.max(1) as f64;
    let cycle_budget_fraction = yearly_cycles / (params.cycle_budget / params.service_years);

    ReliabilityReport {
        arrhenius_factor,
        variation_factor,
        combined_factor: arrhenius_factor * variation_factor,
        cycle_budget_fraction,
        mean_disk_temp,
        mean_daily_range,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DayRecord;

    fn day(min: f64, max: f64, cycles: u64) -> DayRecord {
        DayRecord {
            day: 0,
            sensor_min: vec![min; 4],
            sensor_max: vec![max; 4],
            violation_sum: 0.0,
            readings: 100,
            cooling_kwh: 1.0,
            it_kwh: 10.0,
            max_rate_c_per_hour: 2.0,
            rh_violation_fraction: 0.0,
            outside_range: max - min,
            jobs_completed: 0,
            power_cycles: cycles,
            fault_minutes: 0,
            degraded_minutes: 0,
            failsafe_minutes: 0,
            fallback_transitions: 0,
            imputed_readings: 0,
        }
    }

    #[test]
    fn reference_conditions_give_unit_factors() {
        // Inlet 28 + offset 10 = 38 °C = reference; range = benign.
        let s = AnnualSummary::new(vec![day(26.0, 30.0, 0)]);
        let r = disk_reliability(&s, &ReliabilityParams::default());
        assert!((r.arrhenius_factor - 1.0).abs() < 0.02, "{}", r.arrhenius_factor);
        assert_eq!(r.variation_factor, 1.0);
        assert_eq!(r.cycle_budget_fraction, 0.0);
    }

    #[test]
    fn hotter_disks_fail_more() {
        let cool = disk_reliability(
            &AnnualSummary::new(vec![day(18.0, 22.0, 0)]),
            &ReliabilityParams::default(),
        );
        let hot = disk_reliability(
            &AnnualSummary::new(vec![day(33.0, 37.0, 0)]),
            &ReliabilityParams::default(),
        );
        assert!(cool.arrhenius_factor < 1.0);
        assert!(hot.arrhenius_factor > 1.3, "{}", hot.arrhenius_factor);
        assert!(hot.combined_factor > cool.combined_factor);
    }

    #[test]
    fn wider_ranges_raise_variation_factor() {
        let narrow = disk_reliability(
            &AnnualSummary::new(vec![day(24.0, 28.0, 0)]),
            &ReliabilityParams::default(),
        );
        let wide = disk_reliability(
            &AnnualSummary::new(vec![day(16.0, 36.0, 0)]),
            &ReliabilityParams::default(),
        );
        assert_eq!(narrow.variation_factor, 1.0);
        assert!((wide.variation_factor - 1.8).abs() < 1e-9, "{}", wide.variation_factor);
    }

    #[test]
    fn cycle_budget_accounting() {
        // 64 disks × 8 cycles on the one sampled day → 8 per disk per day →
        // 2920/year against a 75k/year budget.
        let s = AnnualSummary::new(vec![day(24.0, 28.0, 512)]);
        let r = disk_reliability(&s, &ReliabilityParams::default());
        assert!((r.cycle_budget_fraction - 2920.0 / 75_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_neutral() {
        let r = disk_reliability(&AnnualSummary::default(), &ReliabilityParams::default());
        assert_eq!(r.combined_factor, 1.0);
    }

    #[test]
    fn disk_count_comes_from_params() {
        let s = AnnualSummary::new(vec![day(24.0, 28.0, 512)]);
        let half = ReliabilityParams { disks: 32, ..ReliabilityParams::default() };
        let r64 = disk_reliability(&s, &ReliabilityParams::default());
        let r32 = disk_reliability(&s, &half);
        assert!((r32.cycle_budget_fraction - 2.0 * r64.cycle_budget_fraction).abs() < 1e-12);
        // A zero disk count must not divide by zero.
        let none = ReliabilityParams { disks: 0, ..ReliabilityParams::default() };
        assert!(disk_reliability(&s, &none).cycle_budget_fraction.is_finite());
    }

    #[test]
    fn day_without_sensor_extremes_is_finite() {
        // Total sensor dropout leaves a day with no per-sensor extremes;
        // the Arrhenius average must stay finite (previously NaN).
        let mut blank = day(0.0, 0.0, 0);
        blank.sensor_min = Vec::new();
        blank.sensor_max = Vec::new();
        let s = AnnualSummary::new(vec![blank, day(26.0, 30.0, 0)]);
        let r = disk_reliability(&s, &ReliabilityParams::default());
        assert!(r.arrhenius_factor.is_finite());
        assert!(r.combined_factor.is_finite());
        assert!((r.arrhenius_factor - 1.0).abs() < 0.02, "{}", r.arrhenius_factor);
    }
}
