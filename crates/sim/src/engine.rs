//! The closed-loop day simulator shared by Real-Sim and Smooth-Sim.

use coolair::{CoolAir, SupervisedCoolAir, SupervisorTelemetry};
use coolair_telemetry::{Event, Telemetry, TEMP_BOUNDS_C};
use coolair_thermal::{
    CoolingRegime, ItLoad, OutsideConditions, Plant, PlantConfig, SensorReadings, TksController,
};
use coolair_units::{Celsius, SimDuration, SimTime, SECS_PER_HOUR};
use coolair_weather::TmySeries;
use coolair_workload::{Cluster, Job};
use serde::{Deserialize, Serialize};

use crate::faults::FaultPlan;
use crate::metrics::DayRecord;

/// Anything that behaves like the container: the physics [`Plant`] or the
/// learned-model simulator [`crate::ModelPlant`] (the paper's Real-Sim).
pub trait Container: std::fmt::Debug {
    /// Advances the container by `dt`.
    fn step(
        &mut self,
        dt: SimDuration,
        outside: OutsideConditions,
        it: &ItLoad,
        commanded: CoolingRegime,
    );
    /// Sensor snapshot.
    fn readings(&self, now: SimTime) -> SensorReadings;
    /// Number of pod sensors.
    fn pods(&self) -> usize;
}

impl Container for Plant {
    fn step(
        &mut self,
        dt: SimDuration,
        outside: OutsideConditions,
        it: &ItLoad,
        commanded: CoolingRegime,
    ) {
        Plant::step(self, dt, outside, it, commanded);
    }
    fn readings(&self, now: SimTime) -> SensorReadings {
        Plant::readings(self, now)
    }
    fn pods(&self) -> usize {
        self.config().layout.len()
    }
}

impl Container for crate::ModelPlant {
    fn step(
        &mut self,
        dt: SimDuration,
        outside: OutsideConditions,
        it: &ItLoad,
        commanded: CoolingRegime,
    ) {
        crate::ModelPlant::step(self, dt, outside, it, commanded);
    }
    fn readings(&self, now: SimTime) -> SensorReadings {
        crate::ModelPlant::readings(self, now)
    }
    fn pods(&self) -> usize {
        crate::ModelPlant::pods(self)
    }
}

/// Engine parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Plant integration step.
    pub physics_step: SimDuration,
    /// Metrics sampling period.
    pub sample_period: SimDuration,
    /// How often CoolAir observes sensor snapshots (its model step).
    pub observe_period: SimDuration,
    /// Baseline (TKS) decision period. The paper's Real-Sim evaluates the
    /// baseline at the same 10-minute granularity as CoolAir, which is what
    /// produces the documented overshoot behaviour of the abrupt units.
    pub baseline_control: SimDuration,
    /// Cluster/compute management period.
    pub compute_period: SimDuration,
    /// Desired maximum temperature for the violation metric (30 °C in
    /// Figure 8).
    pub desired_max: Celsius,
    /// Record per-minute samples for plotting (Figures 6/7); costs memory.
    pub record_minutes: bool,
    /// Hours of unrecorded warm-up simulated before each day's midnight.
    pub warmup_hours: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            physics_step: SimDuration::from_secs(15),
            sample_period: SimDuration::from_secs(60),
            observe_period: SimDuration::from_minutes(2),
            baseline_control: SimDuration::from_minutes(10),
            compute_period: SimDuration::from_secs(60),
            desired_max: Celsius::new(30.0),
            record_minutes: false,
            warmup_hours: 3,
        }
    }
}

/// One per-minute sample for figure time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinuteSample {
    /// Sample time.
    pub time: SimTime,
    /// Outside temperature, °C.
    pub outside: f64,
    /// Warmest pod inlet (the TKS control sensor), °C.
    pub max_inlet: f64,
    /// Coolest pod inlet, °C.
    pub min_inlet: f64,
    /// Mean pod inlet, °C.
    pub mean_inlet: f64,
    /// Cold-aisle relative humidity, %.
    pub rh: f64,
    /// Free-cooling fan speed, % of max (0 when not free cooling).
    pub fan_pct: f64,
    /// AC compressor drive, % (0 when AC off).
    pub compressor_pct: f64,
    /// Cooling power, W.
    pub cooling_w: f64,
    /// IT power, W.
    pub it_w: f64,
    /// Servers active.
    pub active_servers: usize,
    /// The day's temperature band `(lo, hi)` if the controller has one.
    pub band: Option<(f64, f64)>,
    /// Disk temperature of the warmest pod, °C.
    pub max_disk: f64,
}

/// Output of one simulated day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayOutput {
    /// Aggregated metrics.
    pub record: DayRecord,
    /// Per-minute series (empty unless `record_minutes`).
    pub minutes: Vec<MinuteSample>,
}

/// The controller under test.
#[derive(Debug)]
pub enum SimController {
    /// The baseline system: the extended TKS scheme with every server kept
    /// active (the TKS manages only the cooling regime).
    Baseline(TksController),
    /// A CoolAir version (cooling + compute management).
    CoolAir(Box<CoolAir>),
    /// A CoolAir version wrapped in the degraded-mode supervisor (sensor
    /// validation, fallback ladder, hard overtemp failsafe).
    Supervised(Box<SupervisedCoolAir>),
}

impl SimController {
    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            SimController::Baseline(_) => "Baseline".to_string(),
            SimController::CoolAir(ca) => ca.version().name().to_string(),
            SimController::Supervised(sv) => format!("{}+SV", sv.inner().version().name()),
        }
    }
}

/// The closed-loop simulation: weather drives the plant, the cluster heats
/// it, the controller manages cooling (and, for CoolAir, the active server
/// set and job start times).
#[derive(Debug)]
pub struct Simulation<P: Container = Plant> {
    cfg: SimConfig,
    plant: P,
    cluster: Cluster,
    controller: SimController,
    tmy: TmySeries,
    regime: CoolingRegime,
    pending: Vec<Job>,
    next_job: usize,
    faults: FaultPlan,
    stale_inlets: Vec<Celsius>,
    telemetry: Telemetry,
    fault_active: Vec<bool>,
}

impl Simulation<Plant> {
    /// Builds a physics-backed simulation.
    #[must_use]
    pub fn new(
        controller: SimController,
        plant_config: PlantConfig,
        cluster: Cluster,
        tmy: TmySeries,
        cfg: SimConfig,
    ) -> Self {
        Simulation::with_plant(controller, Plant::new(plant_config), cluster, tmy, cfg)
    }
}

impl<P: Container> Simulation<P> {
    /// Builds a simulation over any container implementation.
    #[must_use]
    pub fn with_plant(
        controller: SimController,
        plant: P,
        cluster: Cluster,
        tmy: TmySeries,
        cfg: SimConfig,
    ) -> Self {
        Simulation {
            cfg,
            plant,
            cluster,
            controller,
            tmy,
            regime: CoolingRegime::Closed,
            pending: Vec::new(),
            next_job: 0,
            faults: FaultPlan::none(),
            stale_inlets: Vec::new(),
            telemetry: Telemetry::disabled(),
            fault_active: Vec::new(),
        }
    }

    /// Attaches a telemetry bus to the engine and its controller. Events
    /// cover day boundaries, control ticks, regime changes, controller mode
    /// changes and fault-window transitions; hot paths are profiled under
    /// the `engine.run_day`, `controller.decide` and `plant.step` scopes.
    /// Telemetry never feeds back into the loop, so an enabled bus produces
    /// bit-identical simulation results to a disabled one.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        match &mut self.controller {
            SimController::Baseline(tks) => tks.set_telemetry(telemetry.clone()),
            SimController::CoolAir(ca) => ca.set_telemetry(telemetry.clone()),
            SimController::Supervised(sv) => sv.set_telemetry(telemetry.clone()),
        }
        self.telemetry = telemetry;
    }

    /// Installs a fault plan. Faults corrupt what the controller senses and
    /// what its actuator commands achieve; the metrics keep sampling the
    /// plant's ground truth. [`FaultPlan::none`] (the default) leaves the
    /// loop bit-identical to a simulation without a fault layer.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
        self.stale_inlets.clear();
        self.fault_active = vec![false; self.faults.windows().len()];
    }

    /// The installed fault plan.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The controller under test.
    #[must_use]
    pub fn controller(&self) -> &SimController {
        &self.controller
    }

    /// Simulates calendar day `day` with the given day-shifted jobs,
    /// returning its metrics. Includes `warmup_hours` of unrecorded
    /// simulation before midnight so the plant state matches the day's
    /// weather.
    pub fn run_day(&mut self, day: u64, jobs: Vec<Job>) -> DayOutput {
        let _day_scope = self.telemetry.time_scope("engine.run_day");
        let _guard = self.telemetry.panic_guard();
        self.telemetry.emit_with(|| Event::DayStart { day });
        self.pending = jobs;
        self.pending.sort_by_key(|j| j.submit);
        self.next_job = 0;

        let midnight = SimTime::from_days(day);
        let start = SimTime::from_secs(
            midnight.as_secs().saturating_sub(self.cfg.warmup_hours * SECS_PER_HOUR),
        );
        let end = midnight + SimDuration::from_days(1);

        let pods = self.plant.pods();
        let mut sensor_min = vec![f64::INFINITY; pods];
        let mut sensor_max = vec![f64::NEG_INFINITY; pods];
        let mut violation_sum = 0.0;
        let mut readings_count = 0u64;
        let mut cooling_j = 0.0; // watt-seconds
        let mut it_j = 0.0;
        let mut rh_violations = 0u64;
        let mut rh_samples = 0u64;
        let mut minutes = Vec::new();
        // Ring buffer of the last hour of per-sensor samples for the
        // rate-of-change metric.
        let samples_per_hour = (SECS_PER_HOUR / self.cfg.sample_period.as_secs()) as usize;
        let mut hour_ring: Vec<Vec<f64>> = Vec::with_capacity(samples_per_hour);
        let mut max_rate = 0.0_f64;

        let cycles_before = self.cluster.total_power_cycles();
        let jobs_before = self.cluster.completed_jobs();
        let mut fault_minutes = 0u64;
        let sv_before = match &self.controller {
            SimController::Supervised(sv) => sv.telemetry(),
            _ => SupervisorTelemetry::default(),
        };

        let mut t = start;
        while t < end {
            let in_day = t >= midnight;

            // --- compute management -----------------------------------------
            if (t % self.cfg.compute_period).is_zero() {
                self.submit_arrivals(t);
                match &mut self.controller {
                    SimController::Baseline(_) => {
                        // The baseline does no energy management: every
                        // server stays active.
                        let total = self.cluster.config().total_servers;
                        self.cluster.set_active_target(total, None);
                    }
                    SimController::CoolAir(ca) => {
                        let demand = self.cluster.demand(t);
                        let covering = self.cluster.config().covering_count;
                        let (target, order) = ca.decide_compute(demand, covering);
                        let order = order.to_vec();
                        self.cluster.set_active_target(target, Some(&order));
                    }
                    SimController::Supervised(sv) => {
                        let demand = self.cluster.demand(t);
                        let covering = self.cluster.config().covering_count;
                        let (target, order) = sv.decide_compute(demand, covering);
                        let order = order.to_vec();
                        self.cluster.set_active_target(target, Some(&order));
                    }
                }
                self.cluster.step(t, self.cfg.compute_period);
            }

            // --- sensing & control --------------------------------------------
            // Controllers sense through the fault layer; only the metrics
            // below sample the plant's ground truth.
            if (t % self.cfg.observe_period).is_zero() {
                let readings = self.controller_readings(t);
                match &mut self.controller {
                    SimController::Baseline(_) => {}
                    SimController::CoolAir(ca) => ca.observe(readings),
                    SimController::Supervised(sv) => sv.observe(readings),
                }
            }
            let control_period = match &self.controller {
                SimController::Baseline(_) => self.cfg.baseline_control,
                SimController::CoolAir(ca) => ca.config().control_period,
                SimController::Supervised(sv) => sv.inner().config().control_period,
            };
            if (t % control_period).is_zero() {
                let readings = self.controller_readings(t);
                let prev_regime = self.regime;
                self.regime = {
                    let _decide_scope = self.telemetry.time_scope("controller.decide");
                    match &mut self.controller {
                        SimController::Baseline(tks) => tks.decide(&readings),
                        SimController::CoolAir(ca) => ca
                            .decide_cooling(&readings, t)
                            .expect("cooling selection: built-in infrastructures always offer candidates")
                            .regime,
                        SimController::Supervised(sv) => sv.decide_cooling(&readings, t),
                    }
                };
                self.telemetry.emit_with(|| Event::ControlTick {
                    time: t,
                    controller: self.controller.name(),
                    regime: self.regime.to_string(),
                    max_inlet: readings.max_inlet().value(),
                    outside: readings.outside_temp.value(),
                });
                if self.regime != prev_regime {
                    self.telemetry.emit_with(|| Event::RegimeChange {
                        time: t,
                        from: prev_regime.to_string(),
                        to: self.regime.to_string(),
                    });
                }
            }

            // --- metrics -------------------------------------------------------
            if in_day && (t % self.cfg.sample_period).is_zero() {
                let readings = self.plant.readings(t);
                let temps: Vec<f64> = readings.pod_inlets.iter().map(|c| c.value()).collect();
                for (i, &v) in temps.iter().enumerate() {
                    sensor_min[i] = sensor_min[i].min(v);
                    sensor_max[i] = sensor_max[i].max(v);
                    violation_sum += (v - self.cfg.desired_max.value()).max(0.0);
                    readings_count += 1;
                }
                if readings.cold_aisle_rh.percent() > 80.0 {
                    rh_violations += 1;
                }
                rh_samples += 1;
                if self.faults.any_active(t) {
                    fault_minutes += 1;
                }
                if self.telemetry.enabled() {
                    for &v in &temps {
                        self.telemetry.observe("inlet_c", v, &TEMP_BOUNDS_C);
                    }
                    // Fault-window edge detection, at metrics resolution.
                    for (i, w) in self.faults.windows().iter().enumerate() {
                        let active = w.covers(t);
                        if active != self.fault_active[i] {
                            self.fault_active[i] = active;
                            let kind = w.kind.to_string();
                            self.telemetry.emit(if active {
                                Event::FaultActivated { time: t, kind }
                            } else {
                                Event::FaultCleared { time: t, kind }
                            });
                        }
                    }
                }
                if hour_ring.len() == samples_per_hour {
                    let old = hour_ring.remove(0);
                    for (a, b) in old.iter().zip(temps.iter()) {
                        max_rate = max_rate.max((b - a).abs());
                    }
                }
                hour_ring.push(temps);

                if self.cfg.record_minutes {
                    minutes.push(self.minute_sample(t, &readings));
                }
            }

            // --- physics ---------------------------------------------------------
            let outside = OutsideConditions {
                temperature: self.tmy.temperature_at(t),
                abs_humidity: self.tmy.absolute_humidity_at(t),
            };
            let it = ItLoad {
                pod_power: self.cluster.pod_power(),
                active_fraction: self.cluster.active_fraction(),
            };
            if in_day {
                let dt_s = self.cfg.physics_step.as_secs() as f64;
                cooling_j += self.plant.readings(t).cooling_power.value() * dt_s;
                it_j += it.total().value() * dt_s;
            }
            // Actuator faults sit between command and plant: the controller
            // believes `self.regime` is in force, the hardware does this.
            let actual = self.faults.apply_actuator(t, self.regime);
            {
                let _step_scope = self.telemetry.time_scope("plant.step");
                self.plant.step(self.cfg.physics_step, outside, &it, actual);
            }
            t += self.cfg.physics_step;
        }

        let sv_after = match &self.controller {
            SimController::Supervised(sv) => sv.telemetry(),
            _ => SupervisorTelemetry::default(),
        };
        let (out_lo, out_hi) = self.tmy.daily_extremes(day);
        let record = DayRecord {
            day,
            sensor_min,
            sensor_max,
            violation_sum,
            readings: readings_count,
            cooling_kwh: cooling_j / 3.6e6,
            it_kwh: it_j / 3.6e6,
            max_rate_c_per_hour: max_rate,
            rh_violation_fraction: if rh_samples == 0 {
                0.0
            } else {
                rh_violations as f64 / rh_samples as f64
            },
            outside_range: (out_hi - out_lo).degrees(),
            jobs_completed: self.cluster.completed_jobs() - jobs_before,
            power_cycles: self.cluster.total_power_cycles() - cycles_before,
            fault_minutes,
            degraded_minutes: sv_after.degraded_minutes - sv_before.degraded_minutes,
            failsafe_minutes: sv_after.failsafe_minutes - sv_before.failsafe_minutes,
            fallback_transitions: sv_after.fallback_transitions - sv_before.fallback_transitions,
            imputed_readings: sv_after.imputed_readings - sv_before.imputed_readings,
        };
        self.telemetry.emit_with(|| Event::DayEnd {
            day,
            violation_sum: record.violation_sum,
            cooling_kwh: record.cooling_kwh,
            it_kwh: record.it_kwh,
        });
        DayOutput { record, minutes }
    }

    /// What the controller senses: the plant truth passed through the fault
    /// layer (a no-op under [`FaultPlan::none`]).
    fn controller_readings(&mut self, t: SimTime) -> SensorReadings {
        let truth = self.plant.readings(t);
        self.faults.corrupt_readings(truth, &mut self.stale_inlets)
    }

    /// Current plant readings (for validation harnesses).
    #[must_use]
    pub fn readings(&self, now: SimTime) -> SensorReadings {
        self.plant.readings(now)
    }

    /// The cluster (for workload statistics).
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn submit_arrivals(&mut self, now: SimTime) {
        while self.next_job < self.pending.len() && self.pending[self.next_job].submit <= now {
            let job = self.pending[self.next_job].clone();
            self.next_job += 1;
            let earliest = match &mut self.controller {
                SimController::CoolAir(ca) if job.is_deferrable() => {
                    ca.schedule_job(&job, now)
                }
                SimController::Supervised(sv) if job.is_deferrable() => {
                    sv.schedule_job(&job, now)
                }
                _ => job.submit,
            };
            self.cluster.submit_with_start(job, earliest);
        }
    }

    fn minute_sample(&self, t: SimTime, readings: &SensorReadings) -> MinuteSample {
        let band = match &self.controller {
            SimController::CoolAir(ca) => {
                ca.band().map(|b| (b.lo().value(), b.hi().value()))
            }
            SimController::Supervised(sv) => {
                sv.band().map(|b| (b.lo().value(), b.hi().value()))
            }
            SimController::Baseline(_) => None,
        };
        let active = (self.cluster.active_fraction()
            * self.cluster.config().total_servers as f64)
            .round() as usize;
        MinuteSample {
            time: t,
            outside: readings.outside_temp.value(),
            max_inlet: readings.max_inlet().value(),
            min_inlet: readings.min_inlet().value(),
            mean_inlet: readings.mean_inlet().value(),
            rh: readings.cold_aisle_rh.percent(),
            fan_pct: readings.regime.fan_speed().percent(),
            compressor_pct: readings.regime.compressor() * 100.0,
            cooling_w: readings.cooling_power.value(),
            it_w: readings.it_power.value(),
            active_servers: active,
            band,
            max_disk: readings
                .disk_temps
                .iter()
                .map(|c| c.value())
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair_thermal::TksConfig;
    use coolair_weather::Location;
    use coolair_workload::{facebook_trace, ClusterConfig};

    fn baseline_sim(record_minutes: bool) -> Simulation {
        let tmy = TmySeries::generate(&Location::newark(), 5);
        Simulation::new(
            SimController::Baseline(TksController::new(TksConfig::baseline())),
            PlantConfig::parasol(),
            Cluster::new(ClusterConfig::parasol()),
            tmy,
            SimConfig { record_minutes, ..SimConfig::default() },
        )
    }

    #[test]
    fn baseline_day_produces_sane_metrics() {
        let mut sim = baseline_sim(false);
        let jobs = facebook_trace(1).jobs_for_day(150);
        let out = sim.run_day(150, jobs);
        let r = &out.record;
        assert_eq!(r.day, 150);
        assert_eq!(r.readings, 4 * 1440);
        assert!(r.worst_range() > 0.5, "some daily range expected");
        assert!(r.worst_range() < 30.0);
        assert!(r.it_kwh > 10.0, "64 servers × 24 h ≥ 10 kWh, got {}", r.it_kwh);
        assert!(r.cooling_kwh >= 0.0);
        assert!(r.jobs_completed > 1000, "got {}", r.jobs_completed);
        assert_eq!(r.power_cycles, 0, "baseline never sleeps servers");
    }

    #[test]
    fn minute_recording_produces_series() {
        let mut sim = baseline_sim(true);
        let jobs = facebook_trace(1).jobs_for_day(10);
        let out = sim.run_day(10, jobs);
        assert_eq!(out.minutes.len(), 1440);
        let s = &out.minutes[720];
        assert!(s.max_inlet >= s.min_inlet);
        assert!(s.it_w > 1000.0, "baseline keeps 64 servers awake");
        assert_eq!(s.band, None);
    }

    #[test]
    fn summer_day_in_chad_engages_ac() {
        let tmy = TmySeries::generate(&Location::chad(), 5);
        let mut sim = Simulation::new(
            SimController::Baseline(TksController::new(TksConfig::baseline())),
            PlantConfig::parasol(),
            Cluster::new(ClusterConfig::parasol()),
            tmy,
            SimConfig { record_minutes: true, ..SimConfig::default() },
        );
        let jobs = facebook_trace(2).jobs_for_day(120);
        let out = sim.run_day(120, jobs);
        let any_ac = out.minutes.iter().any(|m| m.compressor_pct > 0.0);
        assert!(any_ac, "Chad needs the AC");
        assert!(out.record.cooling_kwh > 1.0);
    }

    #[test]
    fn cool_day_in_iceland_avoids_ac() {
        let tmy = TmySeries::generate(&Location::iceland(), 5);
        let mut sim = Simulation::new(
            SimController::Baseline(TksController::new(TksConfig::baseline())),
            PlantConfig::parasol(),
            Cluster::new(ClusterConfig::parasol()),
            tmy,
            SimConfig { record_minutes: true, ..SimConfig::default() },
        );
        let jobs = facebook_trace(2).jobs_for_day(30);
        let out = sim.run_day(30, jobs);
        let any_comp = out.minutes.iter().any(|m| m.compressor_pct > 0.0);
        assert!(!any_comp, "Iceland winter should free-cool only");
        // Temperatures stay under control.
        assert!(out.record.avg_violation() < 1.0);
    }
}
