//! The 1520-location world-wide sweep behind Figures 12 and 13, run on
//! the `coolair-runner` executor.
//!
//! The sweep is two phases of jobs per grid cell: a [`TrainJob`] producing
//! the cell's Cooling Model, then a [`SweepPointJob`] evaluating baseline
//! vs All-ND for a year with that model. Under an executor with an
//! attached store, both phases are content-addressed — a killed sweep
//! resumes from its journal, and a warm rerun serves every model and
//! point from the artifact cache without executing anything.
//!
//! Output ordering is deterministic by construction: results land in
//! per-index slots in grid order (no collection mutex, no name sort).

use coolair::Version;
use coolair_runner::{Executor, JobResult, Telemetry};
use coolair_weather::{world_locations, Location, WorldGrid};
use coolair_workload::TraceKind;
use serde::{Deserialize, Serialize};

use crate::annual::{run_annual, run_annual_with_model, AnnualConfig, SystemSpec};
use crate::jobs::{SweepPointJob, TrainJob};

/// One location's baseline-vs-CoolAir comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldPoint {
    /// Grid cell name.
    pub name: String,
    /// Latitude, degrees north.
    pub latitude: f64,
    /// Longitude, degrees east.
    pub longitude: f64,
    /// Baseline maximum worst daily range, °C.
    pub baseline_max_range: f64,
    /// All-ND maximum worst daily range, °C.
    pub coolair_max_range: f64,
    /// Baseline yearly PUE.
    pub baseline_pue: f64,
    /// All-ND yearly PUE.
    pub coolair_pue: f64,
}

impl WorldPoint {
    /// Reduction in maximum daily range (positive = CoolAir better), °C —
    /// the Figure 12 quantity.
    #[must_use]
    pub fn range_reduction(&self) -> f64 {
        self.baseline_max_range - self.coolair_max_range
    }

    /// Reduction in yearly PUE (positive = CoolAir better) — the Figure 13
    /// quantity.
    #[must_use]
    pub fn pue_reduction(&self) -> f64 {
        self.baseline_pue - self.coolair_pue
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct WorldSweepConfig {
    /// Number of grid locations (the paper uses 1520; smaller counts keep
    /// the latitude coverage).
    pub locations: usize,
    /// Per-location annual-run configuration.
    pub annual: AnnualConfig,
    /// Worker threads (0 → available parallelism, resolved by
    /// [`coolair_runner::worker_threads`]).
    pub threads: usize,
}

impl Default for WorldSweepConfig {
    fn default() -> Self {
        // The sweep is 2 runs × 1520 locations: use a fortnightly stride and
        // a shorter training campaign to keep it tractable, as the paper
        // shortened its own year-long simulations.
        let annual = AnnualConfig {
            stride: 14,
            training: coolair::TrainingConfig { days: 10, ..Default::default() },
            ..AnnualConfig::default()
        };
        WorldSweepConfig { locations: WorldGrid::PAPER_COUNT, annual, threads: 0 }
    }
}

impl WorldSweepConfig {
    /// A tiny sweep for tests.
    #[must_use]
    pub fn smoke(locations: usize) -> Self {
        let annual = AnnualConfig { stride: 60, ..AnnualConfig::quick() };
        WorldSweepConfig { locations, annual, ..WorldSweepConfig::default() }
    }
}

/// Outcome of an executor-driven sweep: the successful points in grid
/// order plus any shards that exhausted their attempt budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Successful points, in grid (input) order.
    pub points: Vec<WorldPoint>,
    /// `(location name, error)` for each failed shard.
    pub failures: Vec<(String, String)>,
}

/// Runs baseline and All-ND for a year at every grid location, in
/// parallel. Thin wrapper over [`world_sweep_with`] on an in-memory
/// executor (no store, no journal), kept for the figure benches and
/// callers that want the original fail-fast contract.
///
/// # Panics
///
/// Panics if any shard exhausts its attempt budget (matching the old
/// behaviour where a worker panic aborted the sweep).
#[must_use]
pub fn world_sweep(cfg: &WorldSweepConfig) -> Vec<WorldPoint> {
    let exec = Executor::in_memory(cfg.threads, Telemetry::disabled());
    let report = world_sweep_with(cfg, &exec);
    assert!(
        report.failures.is_empty(),
        "sweep shards failed: {:?}",
        report.failures
    );
    report.points
}

/// Runs the sweep for a config's grid on the given executor.
#[must_use]
pub fn world_sweep_with(cfg: &WorldSweepConfig, exec: &Executor) -> SweepReport {
    sweep_locations(&world_locations(cfg.locations), &cfg.annual, exec)
}

/// Runs the two-phase sweep over an explicit location list (how the CLI
/// shards the grid across machines).
#[must_use]
pub fn sweep_locations(
    locations: &[Location],
    annual: &AnnualConfig,
    exec: &Executor,
) -> SweepReport {
    // Phase 1: one training job per location (content-addressed, so warm
    // stores serve every model without retraining).
    let train_jobs: Vec<TrainJob> = locations
        .iter()
        .map(|l| TrainJob { location: l.clone(), annual: annual.clone() })
        .collect();
    let models = exec.run(&train_jobs);

    // Phase 2: one evaluation shard per successfully trained location.
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut point_jobs: Vec<SweepPointJob> = Vec::new();
    for (location, model) in locations.iter().zip(models) {
        match model {
            JobResult::Computed(m) | JobResult::Cached(m) => point_jobs.push(SweepPointJob {
                location: location.clone(),
                annual: annual.clone(),
                model: m,
            }),
            JobResult::Failed { attempts, error } => failures.push((
                location.name().to_string(),
                format!("training failed after {attempts} attempts: {error}"),
            )),
        }
    }

    let mut points = Vec::with_capacity(point_jobs.len());
    for (job, result) in point_jobs.iter().zip(exec.run(&point_jobs)) {
        match result {
            JobResult::Computed(p) | JobResult::Cached(p) => points.push(p),
            JobResult::Failed { attempts, error } => failures.push((
                job.location.name().to_string(),
                format!("evaluation failed after {attempts} attempts: {error}"),
            )),
        }
    }
    SweepReport { points, failures }
}

/// Evaluates one location: baseline vs All-ND (the Figure 12/13 pairing),
/// training the model in-line. The single-location entry point behind
/// `coolair compare`.
#[must_use]
pub fn sweep_one(location: &Location, annual: &AnnualConfig) -> WorldPoint {
    let model = crate::annual::train_for_location(location, annual);
    sweep_one_with_model(location, annual, model)
}

/// Evaluates one location with a pre-trained model — the body of a
/// [`SweepPointJob`].
#[must_use]
pub fn sweep_one_with_model(
    location: &Location,
    annual: &AnnualConfig,
    model: coolair::CoolingModel,
) -> WorldPoint {
    let baseline = run_annual(&SystemSpec::Baseline, location, TraceKind::Facebook, annual);
    let coolair = run_annual_with_model(
        &SystemSpec::CoolAir(Version::AllNd),
        location,
        TraceKind::Facebook,
        annual,
        Some(model),
    );
    WorldPoint {
        name: location.name().to_string(),
        latitude: location.latitude(),
        longitude: location.longitude(),
        baseline_max_range: baseline.max_worst_range(),
        coolair_max_range: coolair.max_worst_range(),
        baseline_pue: baseline.pue(),
        coolair_pue: coolair.pue(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_locations() {
        let cfg = WorldSweepConfig::smoke(3);
        let points = world_sweep(&cfg);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.baseline_max_range > 0.0);
            assert!(p.coolair_max_range > 0.0);
            assert!(p.baseline_pue > 1.0 && p.baseline_pue < 3.0);
            assert!(p.coolair_pue > 1.0 && p.coolair_pue < 3.0);
        }
    }

    #[test]
    fn sweep_order_is_grid_order() {
        let cfg = WorldSweepConfig::smoke(4);
        let points = world_sweep(&cfg);
        let grid = WorldGrid::with_count(4);
        let names: Vec<&str> = grid.locations().iter().map(Location::name).collect();
        let got: Vec<&str> = points.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(got, names, "points must land in grid order, not name order");
    }
}
