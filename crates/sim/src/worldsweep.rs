//! The 1520-location world-wide sweep behind Figures 12 and 13.

use std::sync::atomic::{AtomicUsize, Ordering};

use coolair::Version;
use coolair_weather::{Location, WorldGrid};
use coolair_workload::TraceKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::annual::{run_annual, run_annual_with_model, train_for_location, AnnualConfig, SystemSpec};

/// One location's baseline-vs-CoolAir comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldPoint {
    /// Grid cell name.
    pub name: String,
    /// Latitude, degrees north.
    pub latitude: f64,
    /// Longitude, degrees east.
    pub longitude: f64,
    /// Baseline maximum worst daily range, °C.
    pub baseline_max_range: f64,
    /// All-ND maximum worst daily range, °C.
    pub coolair_max_range: f64,
    /// Baseline yearly PUE.
    pub baseline_pue: f64,
    /// All-ND yearly PUE.
    pub coolair_pue: f64,
}

impl WorldPoint {
    /// Reduction in maximum daily range (positive = CoolAir better), °C —
    /// the Figure 12 quantity.
    #[must_use]
    pub fn range_reduction(&self) -> f64 {
        self.baseline_max_range - self.coolair_max_range
    }

    /// Reduction in yearly PUE (positive = CoolAir better) — the Figure 13
    /// quantity.
    #[must_use]
    pub fn pue_reduction(&self) -> f64 {
        self.baseline_pue - self.coolair_pue
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct WorldSweepConfig {
    /// Number of grid locations (the paper uses 1520; smaller counts keep
    /// the latitude coverage).
    pub locations: usize,
    /// Per-location annual-run configuration.
    pub annual: AnnualConfig,
    /// Worker threads (0 → available parallelism).
    pub threads: usize,
}

impl Default for WorldSweepConfig {
    fn default() -> Self {
        // The sweep is 2 runs × 1520 locations: use a fortnightly stride and
        // a shorter training campaign to keep it tractable, as the paper
        // shortened its own year-long simulations.
        let annual = AnnualConfig {
            stride: 14,
            training: coolair::TrainingConfig { days: 10, ..Default::default() },
            ..AnnualConfig::default()
        };
        WorldSweepConfig { locations: WorldGrid::PAPER_COUNT, annual, threads: 0 }
    }
}

impl WorldSweepConfig {
    /// A tiny sweep for tests.
    #[must_use]
    pub fn smoke(locations: usize) -> Self {
        let annual = AnnualConfig { stride: 60, ..AnnualConfig::quick() };
        WorldSweepConfig { locations, annual, ..WorldSweepConfig::default() }
    }
}

/// Runs baseline and All-ND for a year at every grid location, in parallel.
#[must_use]
pub fn world_sweep(cfg: &WorldSweepConfig) -> Vec<WorldPoint> {
    let grid = WorldGrid::with_count(cfg.locations);
    let locations: Vec<Location> = grid.locations().to_vec();
    let results: Mutex<Vec<WorldPoint>> = Mutex::new(Vec::with_capacity(locations.len()));
    let next = AtomicUsize::new(0);
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        cfg.threads
    };

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= locations.len() {
                    break;
                }
                let point = sweep_one(&locations[i], &cfg.annual);
                results.lock().push(point);
            });
        }
    })
    .expect("sweep worker panicked");

    let mut out = results.into_inner();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Evaluates one location: baseline vs All-ND (the Figure 12/13 pairing).
#[must_use]
pub fn sweep_one(location: &Location, annual: &AnnualConfig) -> WorldPoint {
    let baseline = run_annual(&SystemSpec::Baseline, location, TraceKind::Facebook, annual);
    let model = train_for_location(location, annual);
    let coolair = run_annual_with_model(
        &SystemSpec::CoolAir(Version::AllNd),
        location,
        TraceKind::Facebook,
        annual,
        Some(model),
    );
    WorldPoint {
        name: location.name().to_string(),
        latitude: location.latitude(),
        longitude: location.longitude(),
        baseline_max_range: baseline.max_worst_range(),
        coolair_max_range: coolair.max_worst_range(),
        baseline_pue: baseline.pue(),
        coolair_pue: coolair.pue(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_locations() {
        let cfg = WorldSweepConfig::smoke(3);
        let points = world_sweep(&cfg);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.baseline_max_range > 0.0);
            assert!(p.coolair_max_range > 0.0);
            assert!(p.baseline_pue > 1.0 && p.baseline_pue < 3.0);
            assert!(p.coolair_pue > 1.0 && p.coolair_pue < 3.0);
        }
    }
}
