//! Multiple independent cooling zones.
//!
//! §6: "For a large datacenter with multiple independent 'cooling zones'
//! (e.g., containers), each of them would have its own CoolAir-like
//! manager." This module scales the single-container simulation out to a
//! small fleet: each zone owns a plant, a cluster, and a controller; a
//! dispatcher splits the offered workload across zones.

use coolair::{CoolAir, CoolAirConfig, CoolingModel, Version};
use coolair_thermal::{Infrastructure, PlantConfig, TksConfig, TksController};
use coolair_units::SimTime;
use coolair_weather::{Forecaster, TmySeries};
use coolair_workload::{Cluster, ClusterConfig, Job, JobId};
use serde::{Deserialize, Serialize};

use crate::engine::{SimConfig, SimController, Simulation};
use crate::metrics::{AnnualSummary, DayRecord};

/// What runs in one zone.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneSpec {
    /// The extended-TKS baseline.
    Baseline,
    /// A CoolAir version on the smooth infrastructure.
    CoolAir(Version),
}

/// A fleet of independent cooling zones fed by one workload stream.
#[derive(Debug)]
pub struct MultiZone {
    zones: Vec<Simulation>,
    records: Vec<Vec<DayRecord>>,
}

/// Aggregate results per zone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiZoneReport {
    /// Zone names (controller names).
    pub zones: Vec<String>,
    /// Per-zone annual summaries.
    pub summaries: Vec<AnnualSummary>,
}

impl MultiZoneReport {
    /// Fleet-wide PUE (energy-weighted across zones).
    #[must_use]
    pub fn fleet_pue(&self) -> f64 {
        let it: f64 = self.summaries.iter().map(AnnualSummary::it_kwh).sum();
        let cooling: f64 = self.summaries.iter().map(AnnualSummary::cooling_kwh).sum();
        if it <= 0.0 {
            return 1.0 + crate::metrics::POWER_DELIVERY_PUE;
        }
        (it + cooling) / it + crate::metrics::POWER_DELIVERY_PUE
    }
}

impl MultiZone {
    /// Builds a fleet. All zones share the site's weather; CoolAir zones
    /// share the pre-trained model (one container design, one model — as a
    /// real fleet of identical containers would).
    #[must_use]
    pub fn new(
        specs: &[ZoneSpec],
        model: &CoolingModel,
        tmy: &TmySeries,
        engine: SimConfig,
    ) -> Self {
        let zones = specs
            .iter()
            .map(|spec| {
                let (controller, plant) = match spec {
                    ZoneSpec::Baseline => (
                        SimController::Baseline(TksController::new(TksConfig::baseline())),
                        PlantConfig::parasol(),
                    ),
                    ZoneSpec::CoolAir(version) => (
                        SimController::CoolAir(Box::new(CoolAir::new(
                            *version,
                            CoolAirConfig::default(),
                            model.clone(),
                            Forecaster::perfect(tmy.clone()),
                            Infrastructure::Smooth,
                        ))),
                        PlantConfig::smooth(),
                    ),
                };
                Simulation::new(
                    controller,
                    plant,
                    Cluster::new(ClusterConfig::parasol()),
                    tmy.clone(),
                    engine.clone(),
                )
            })
            .collect::<Vec<_>>();
        let records = (0..zones.len()).map(|_| Vec::new()).collect();
        MultiZone { zones, records }
    }

    /// Number of zones.
    #[must_use]
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// `true` when the fleet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Runs one calendar day, splitting `jobs` across zones round-robin
    /// (each zone gets an equal share of jobs, with fresh per-zone ids).
    pub fn run_day(&mut self, day: u64, jobs: &[Job]) {
        let n = self.zones.len();
        for (z, zone) in self.zones.iter_mut().enumerate() {
            let share: Vec<Job> = jobs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % n == z)
                .map(|(i, j)| Job { id: JobId(j.id.0 * n as u64 + i as u64), ..j.clone() })
                .collect();
            let out = zone.run_day(day, share);
            self.records[z].push(out.record);
        }
    }

    /// Collects the per-zone summaries.
    #[must_use]
    pub fn report(&self) -> MultiZoneReport {
        MultiZoneReport {
            zones: self.zones.iter().map(|z| z.controller().name()).collect(),
            summaries: self
                .records
                .iter()
                .map(|days| AnnualSummary::new(days.clone()))
                .collect(),
        }
    }

    /// Direct access to a zone's simulation (e.g. its cluster statistics).
    ///
    /// # Panics
    ///
    /// Panics if `z` is out of range.
    #[must_use]
    pub fn zone(&self, z: usize) -> &Simulation {
        &self.zones[z]
    }

    /// Current simulated readings of zone `z`.
    ///
    /// # Panics
    ///
    /// Panics if `z` is out of range.
    #[must_use]
    pub fn zone_readings(&self, z: usize, now: SimTime) -> coolair_thermal::SensorReadings {
        self.zones[z].readings(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair::{train_cooling_model, TrainingConfig};
    use coolair_weather::Location;
    use coolair_workload::facebook_trace;

    #[test]
    fn fleet_splits_work_and_reports_per_zone() {
        let tmy = TmySeries::generate(&Location::newark(), 11);
        let model = train_cooling_model(&tmy, &TrainingConfig::quick());
        let mut fleet = MultiZone::new(
            &[ZoneSpec::Baseline, ZoneSpec::CoolAir(Version::AllNd)],
            &model,
            &tmy,
            SimConfig::default(),
        );
        assert_eq!(fleet.len(), 2);
        let jobs = facebook_trace(1).jobs_for_day(100);
        fleet.run_day(100, &jobs);
        let report = fleet.report();
        assert_eq!(report.zones, ["Baseline", "All-ND"]);
        for s in &report.summaries {
            assert_eq!(s.len(), 1);
            assert!(s.it_kwh() > 1.0);
        }
        // Each zone got roughly half the jobs.
        let total: u64 = report.summaries.iter().map(AnnualSummary::jobs_completed).sum();
        assert!(total > jobs.len() as u64 / 2, "completed {total}");
        assert!(report.fleet_pue() > 1.05 && report.fleet_pue() < 2.0);
    }
}
