//! Serializable job specs turning the expensive experiments — training
//! campaigns, annual runs (including fault campaigns), and world-sweep
//! shards — into [`coolair_runner::Job`]s.
//!
//! Digest discipline: a job's digest covers exactly the spec fields that
//! determine its output. [`SweepPointJob`] carries a pre-trained model as
//! a runtime payload, but the model is itself a deterministic product of
//! `(location, weather_seed, training)` — all inside the digested
//! `AnnualConfig` — so it stays out of the hash and repeated sweeps hit
//! the same artifacts.

use coolair::{CoolingModel, TrainingConfig};
use coolair_runner::{stable_digest, Digest, Job};
use coolair_weather::Location;
use coolair_workload::TraceKind;
use serde::{Deserialize, Serialize};

use crate::annual::{
    run_annual, run_annual_with_model, train_for_location, AnnualConfig, SystemSpec,
};
use crate::metrics::AnnualSummary;
use crate::worldsweep::{sweep_one_with_model, WorldPoint};

/// Artifact namespace of trained Cooling Models.
pub const KIND_COOLING_MODEL: &str = "cooling-model";
/// Artifact namespace of world-sweep points.
pub const KIND_WORLD_POINT: &str = "world-point";
/// Artifact namespace of annual summaries.
pub const KIND_ANNUAL_SUMMARY: &str = "annual-summary";

/// Trains the §4.2 Cooling Model for one location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainJob {
    /// Training site.
    pub location: Location,
    /// Annual configuration supplying the weather seed and
    /// [`TrainingConfig`].
    pub annual: AnnualConfig,
}

impl Job for TrainJob {
    type Output = CoolingModel;

    fn kind(&self) -> &'static str {
        KIND_COOLING_MODEL
    }

    /// Training depends only on the location, the weather seed and the
    /// training campaign — not on stride, faults, or any other evaluation
    /// knob.
    fn digest(&self) -> Digest {
        let key: (&Location, u64, &TrainingConfig) =
            (&self.location, self.annual.weather_seed, &self.annual.training);
        stable_digest(&key)
    }

    fn label(&self) -> String {
        self.location.name().to_string()
    }

    fn run(&self) -> CoolingModel {
        train_for_location(&self.location, &self.annual)
    }
}

/// One world-sweep shard: baseline vs All-ND for a year at one grid cell
/// (the Figure 12/13 pairing), evaluated with a pre-trained model.
#[derive(Debug, Clone)]
pub struct SweepPointJob {
    /// Grid cell.
    pub location: Location,
    /// Per-location annual configuration.
    pub annual: AnnualConfig,
    /// The location's trained Cooling Model (runtime payload; not part of
    /// the digest — see the module docs).
    pub model: CoolingModel,
}

impl Job for SweepPointJob {
    type Output = WorldPoint;

    fn kind(&self) -> &'static str {
        KIND_WORLD_POINT
    }

    fn digest(&self) -> Digest {
        let key: (&Location, &AnnualConfig) = (&self.location, &self.annual);
        stable_digest(&key)
    }

    fn label(&self) -> String {
        self.location.name().to_string()
    }

    fn run(&self) -> WorldPoint {
        sweep_one_with_model(&self.location, &self.annual, self.model.clone())
    }
}

/// One full annual evaluation of a system at a location — the unit behind
/// the figure grids and fault campaigns (faults ride in
/// [`AnnualConfig::faults`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnualJob {
    /// System under evaluation.
    pub system: SystemSpec,
    /// Evaluation site.
    pub location: Location,
    /// Workload trace.
    pub trace: TraceKind,
    /// Annual configuration (stride, seeds, faults, engine tuning).
    pub annual: AnnualConfig,
}

impl Job for AnnualJob {
    type Output = AnnualSummary;

    fn kind(&self) -> &'static str {
        KIND_ANNUAL_SUMMARY
    }

    fn digest(&self) -> Digest {
        stable_digest(self)
    }

    fn label(&self) -> String {
        format!("{} @ {}", self.system.name(), self.location.name())
    }

    fn run(&self) -> AnnualSummary {
        run_annual(&self.system, &self.location, self.trace, &self.annual)
    }
}

/// Like [`AnnualJob`] but reusing a pre-trained model (the digest is the
/// same as the equivalent [`AnnualJob`] — the artifact is
/// interchangeable).
#[derive(Debug, Clone)]
pub struct AnnualWithModelJob {
    /// The underlying spec.
    pub spec: AnnualJob,
    /// Pre-trained model (runtime payload, not digested).
    pub model: Option<CoolingModel>,
}

impl Job for AnnualWithModelJob {
    type Output = AnnualSummary;

    fn kind(&self) -> &'static str {
        KIND_ANNUAL_SUMMARY
    }

    fn digest(&self) -> Digest {
        self.spec.digest()
    }

    fn label(&self) -> String {
        self.spec.label()
    }

    fn run(&self) -> AnnualSummary {
        run_annual_with_model(
            &self.spec.system,
            &self.spec.location,
            self.spec.trace,
            &self.spec.annual,
            self.model.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_annual() -> AnnualConfig {
        AnnualConfig::quick()
    }

    #[test]
    fn train_digest_ignores_evaluation_knobs() {
        let a = TrainJob { location: Location::newark(), annual: quick_annual() };
        let mut faster = quick_annual();
        faster.stride = 120; // stride is an evaluation knob, not a training one
        let b = TrainJob { location: Location::newark(), annual: faster };
        assert_eq!(a.digest(), b.digest());

        let mut other_campaign = quick_annual();
        other_campaign.training.days += 1;
        let c = TrainJob { location: Location::newark(), annual: other_campaign };
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn point_digest_separates_locations_and_configs() {
        let newark_model = train_for_location(&Location::newark(), &quick_annual());
        let chad_model = train_for_location(&Location::chad(), &quick_annual());
        let a = SweepPointJob {
            location: Location::newark(),
            annual: quick_annual(),
            model: newark_model.clone(),
        };
        let b = SweepPointJob {
            location: Location::chad(),
            annual: quick_annual(),
            model: newark_model,
        };
        assert_ne!(a.digest(), b.digest());
        // The runtime model payload does not perturb the digest.
        let c = SweepPointJob {
            location: Location::newark(),
            annual: quick_annual(),
            model: chad_model,
        };
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn annual_job_digest_covers_system_and_trace() {
        let base = AnnualJob {
            system: SystemSpec::Baseline,
            location: Location::newark(),
            trace: TraceKind::Facebook,
            annual: quick_annual(),
        };
        let other_system = AnnualJob { system: SystemSpec::CoolAir(coolair::Version::AllNd), ..base.clone() };
        let other_trace = AnnualJob { trace: TraceKind::Nutch, ..base.clone() };
        assert_ne!(base.digest(), other_system.digest());
        assert_ne!(base.digest(), other_trace.digest());
    }
}
