//! Validation harness: the Figure 5 prediction-error CDFs.
//!
//! "We compare the predicted temperatures to measured values in Parasol,
//! during two entire (and non-consecutive) days that were not in the
//! learning dataset" — four CDFs (2/10 minutes ahead, with and without
//! regime transitions), plus the humidity check ("97 % of our predictions
//! are within 5 % of the measured humidities").

use coolair::modeler::features::{humidity_features, temp_features};
use coolair::CoolingModel;
use coolair_ml::ErrorCdf;
use coolair_thermal::{
    CoolingRegime, ItLoad, ModelKey, OutsideConditions, Plant, PlantConfig, PodId,
    SensorReadings, TksConfig, TksController, SERVERS_PER_POD,
};
use coolair_units::{SimDuration, SimTime, Watts};
use coolair_weather::TmySeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Figure 5 report.
#[derive(Debug, Clone)]
pub struct ModelErrorReport {
    /// |predicted − measured| 2 minutes ahead, all intervals.
    pub two_min: ErrorCdf,
    /// 2 minutes ahead, intervals without a regime transition.
    pub two_min_no_transition: ErrorCdf,
    /// 10 minutes ahead (5 chained model steps), all windows.
    pub ten_min: ErrorCdf,
    /// 10 minutes ahead, windows without any regime transition.
    pub ten_min_no_transition: ErrorCdf,
    /// Relative-humidity prediction error, percentage points, 10 minutes
    /// ahead.
    pub humidity: ErrorCdf,
}

/// Simulates held-out days on the Parasol plant under the default TKS
/// controller (with a fresh utilisation schedule) and evaluates `model`'s
/// predictions against the plant.
#[must_use]
pub fn model_error_cdfs(
    model: &CoolingModel,
    tmy: &TmySeries,
    days: &[u64],
    seed: u64,
) -> ModelErrorReport {
    // --- collect a ground-truth trajectory --------------------------------
    let plant_cfg = PlantConfig::parasol();
    let pods = plant_cfg.layout.len();
    let mut plant = Plant::new(plant_cfg);
    let mut tks = TksController::new(TksConfig::factory());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a11da7e);

    let dt = SimDuration::from_secs(15);
    let sample = SimDuration::from_minutes(2);
    let control = SimDuration::from_minutes(10);

    // (readings, class of regime applied during the following interval).
    let mut samples: Vec<SensorReadings> = Vec::new();

    for &day in days {
        let start = SimTime::from_days(day);
        let end = start + SimDuration::from_days(1);
        let mut t = start;
        let mut regime = CoolingRegime::Closed;
        let mut util = 0.3;
        let mut next_util = t;
        while t < end {
            if t >= next_util {
                util = rng.gen_range(0.1..0.9);
                next_util = t + SimDuration::from_minutes(rng.gen_range(45..150));
            }
            if (t % control).is_zero() {
                let readings = plant.readings(t);
                regime = tks.decide(&readings);
            }
            if (t % sample).is_zero() {
                samples.push(plant.readings(t));
            }
            let outside = OutsideConditions {
                temperature: tmy.temperature_at(t),
                abs_humidity: tmy.absolute_humidity_at(t),
            };
            let it = ItLoad::uniform(
                pods,
                Watts::new(util * SERVERS_PER_POD as f64 * 26.0),
                util,
            );
            plant.step(dt, outside, &it, regime);
            t += dt;
        }
        // Mark the day boundary so windows do not straddle held-out days.
        samples.push(plant.readings(SimTime::from_secs(u64::MAX / 2)));
    }

    // --- evaluate the model against the trajectory -------------------------
    let mut two = Vec::new();
    let mut two_nt = Vec::new();
    let mut ten = Vec::new();
    let mut ten_nt = Vec::new();
    let mut hum = Vec::new();

    let horizon = 5;
    let boundary = |s: &SensorReadings| s.time.as_secs() >= u64::MAX / 4;

    for k in 1..samples.len().saturating_sub(horizon) {
        if (k - 1..=k + horizon).any(|i| boundary(&samples[i])) {
            continue;
        }
        let r_prev = &samples[k - 1];
        let r_now = &samples[k];

        // Roll the model forward `horizon` steps following the *actual*
        // regime sequence the plant executed.
        let mut t_now: Vec<f64> = r_now.pod_inlets.iter().map(|c| c.value()).collect();
        let mut t_prev: Vec<f64> = r_prev.pod_inlets.iter().map(|c| c.value()).collect();
        let mut w = r_now.cold_aisle_abs.grams_per_kg();
        let mut fan_prev = r_now.regime.fan_speed().fraction();
        let mut any_transition = false;

        for step in 0..horizon {
            let from = samples[k + step].regime.class();
            let to = samples[k + step + 1].regime.class();
            let key = ModelKey::for_step(from, to);
            if key.is_transition() {
                any_transition = true;
            }
            let fan = samples[k + step + 1].regime.fan_speed().fraction();
            let t_out = samples[k + step].outside_temp.value();
            let mut next = vec![0.0; t_now.len()];
            for (p, slot) in next.iter_mut().enumerate() {
                let x = temp_features(
                    t_now[p],
                    t_prev[p],
                    t_out,
                    t_out,
                    fan,
                    fan_prev,
                    samples[k + step].active_fraction,
                );
                *slot = model.predict_temp(key, PodId(p), &x);
            }
            let hx = humidity_features(w, samples[k + step].outside_abs.grams_per_kg(), fan);
            w = model.predict_humidity(key, &hx);
            t_prev = std::mem::take(&mut t_now);
            t_now = next;
            fan_prev = fan;

            if step == 0 {
                let actual = &samples[k + 1];
                for (p, pred) in t_now.iter().enumerate() {
                    let e = pred - actual.pod_inlets[p].value();
                    two.push(e);
                    if !key.is_transition() {
                        two_nt.push(e);
                    }
                }
            }
        }

        let actual = &samples[k + horizon];
        for (p, pred) in t_now.iter().enumerate() {
            let e = pred - actual.pod_inlets[p].value();
            ten.push(e);
            if !any_transition {
                ten_nt.push(e);
            }
        }
        // Humidity: convert predicted absolute to RH at the actual mean
        // inlet temperature, as §3.1 describes.
        let rh_pred = coolair_units::psychro::relative_humidity(
            actual.mean_inlet(),
            coolair_units::AbsoluteHumidity::new(w.max(0.0)),
        );
        hum.push(rh_pred.percent() - actual.cold_aisle_rh.percent());
    }

    ModelErrorReport {
        two_min: ErrorCdf::from_errors(two),
        two_min_no_transition: ErrorCdf::from_errors(two_nt),
        ten_min: ErrorCdf::from_errors(ten),
        ten_min_no_transition: ErrorCdf::from_errors(ten_nt),
        humidity: ErrorCdf::from_errors(hum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair::{train_cooling_model, TrainingConfig};
    use coolair_weather::Location;

    #[test]
    fn model_accuracy_matches_paper_quality_gates() {
        let tmy = TmySeries::generate(&Location::newark(), 11);
        let model = train_cooling_model(&tmy, &TrainingConfig::quick());
        // Held-out, non-consecutive days beyond the quick 8-day training
        // window.
        let report = model_error_cdfs(&model, &tmy, &[40, 80], 3);

        assert!(report.two_min.len() > 1000);
        let p2nt = report.two_min_no_transition.fraction_within(1.0);
        assert!(
            p2nt > 0.85,
            "paper: 95% of no-transition 2-min predictions within 1°C; got {:.1}%",
            p2nt * 100.0
        );
        let p10nt = report.ten_min_no_transition.fraction_within(1.0);
        assert!(
            p10nt > 0.70,
            "paper: 90% of no-transition 10-min predictions within 1°C; got {:.1}%",
            p10nt * 100.0
        );
        let p2 = report.two_min.fraction_within(1.0);
        assert!(p2 > 0.80, "paper: >90% of all 2-min within 1°C; got {:.1}%", p2 * 100.0);
        let hum = report.humidity.fraction_within(5.0);
        assert!(
            hum > 0.80,
            "paper: 97% of humidity predictions within 5%; got {:.1}%",
            hum * 100.0
        );
        // No-transition predictions are (about) as good or better.
        assert!(
            report.two_min_no_transition.fraction_within(1.0)
                >= report.two_min.fraction_within(1.0) - 0.02
        );
    }
}
