//! Seeded, deterministic fault injection for the closed-loop simulator.
//!
//! A [`FaultPlan`] schedules sensor faults (dropout, stuck-at, drift,
//! Gaussian noise), actuator faults (fan stuck at a speed, AC compressor
//! lockout, damper jam) and forecast-service failures as time windows over
//! the simulated year. The engine threads the plan through
//! [`crate::Simulation::run_day`] so that every controller under test sees
//! the *same* corrupted world:
//!
//! - sensor faults corrupt only the controller-facing snapshots; metrics
//!   keep reading plant ground truth, so violation numbers measure what the
//!   room actually did, not what the broken sensor claimed;
//! - actuator faults map the *commanded* regime to the *actual* regime just
//!   before the physics step, so a controller that commands free cooling
//!   with a jammed damper really gets a closed container;
//! - forecast faults become [`ForecastGlitch`] entries applied by
//!   [`coolair_weather::Forecaster::with_glitches`].
//!
//! Everything is a pure function of the plan's seed and simulation time —
//! noise in particular does not depend on how often or in which order
//! readings are taken — so a fixed seed reproduces the exact same year.
//! [`FaultPlan::none`] is guaranteed zero-cost: with an empty plan every
//! code path returns its input untouched.

use coolair_thermal::{CoolingRegime, SensorReadings};
use coolair_units::{Celsius, FanSpeed, SimDuration, SimTime, TempDelta, SECS_PER_DAY};
use coolair_weather::{ForecastGlitch, GlitchKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fault of one pod-inlet sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorFault {
    /// The sensor stops reporting. The monitoring layer holds the last
    /// value received (stale-hold) — which is exactly how polled sensor
    /// stacks fail in practice, and what staleness validation must catch.
    Dropout,
    /// The sensor reports a constant value, °C.
    StuckAt(f64),
    /// Miscalibration that grows linearly while the fault is active.
    Drift {
        /// Offset growth rate, °C per hour since the window opened.
        c_per_hour: f64,
    },
    /// Zero-mean Gaussian noise added to every reading.
    Noise {
        /// Noise standard deviation, °C.
        std_c: f64,
    },
}

/// A fault of the cooling actuators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActuatorFault {
    /// The free-cooling fan is mechanically stuck: any free-cooling command
    /// runs at this speed instead of the commanded one.
    FanStuck {
        /// The speed the fan is stuck at.
        fan: FanSpeed,
    },
    /// The AC compressor refuses to start (lockout): AC commands degrade to
    /// fan-only operation.
    AcLockout,
    /// The outside-air damper is jammed shut: free-cooling commands degrade
    /// to a closed container.
    DamperJam,
}

/// What a [`FaultWindow`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A sensor fault on one pod's inlet sensor.
    Sensor {
        /// Index of the affected pod.
        pod: usize,
        /// The fault.
        fault: SensorFault,
    },
    /// An actuator fault (affects whatever regime is commanded).
    Actuator(ActuatorFault),
    /// A forecast-service failure covering the window's days.
    Forecast(GlitchKind),
}

impl std::fmt::Display for SensorFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensorFault::Dropout => write!(f, "dropout"),
            SensorFault::StuckAt(v) => write!(f, "stuck@{v:.1}C"),
            SensorFault::Drift { c_per_hour } => write!(f, "drift {c_per_hour:+.1}C/h"),
            SensorFault::Noise { std_c } => write!(f, "noise σ={std_c:.1}C"),
        }
    }
}

impl std::fmt::Display for ActuatorFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActuatorFault::FanStuck { fan } => write!(f, "fan stuck@{fan}"),
            ActuatorFault::AcLockout => write!(f, "AC lockout"),
            ActuatorFault::DamperJam => write!(f, "damper jam"),
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Sensor { pod, fault } => write!(f, "sensor[{pod}]: {fault}"),
            FaultKind::Actuator(a) => write!(f, "actuator: {a}"),
            FaultKind::Forecast(g) => write!(f, "forecast: {g:?}"),
        }
    }
}

/// One scheduled fault: a kind active over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// When the fault appears.
    pub start: SimTime,
    /// When the fault clears (exclusive).
    pub end: SimTime,
    /// What it injects.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// `true` while the fault is active.
    #[must_use]
    pub fn covers(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Expected fault load used by [`FaultPlan::random`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Expected sensor-fault windows per simulated day.
    pub sensor_per_day: f64,
    /// Expected actuator-fault windows per simulated day.
    pub actuator_per_day: f64,
    /// Probability that a day's forecast is glitched.
    pub forecast_per_day: f64,
    /// Shortest fault window.
    pub min_duration: SimDuration,
    /// Longest fault window.
    pub max_duration: SimDuration,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            sensor_per_day: 1.0,
            actuator_per_day: 0.25,
            forecast_per_day: 0.1,
            min_duration: SimDuration::from_minutes(30),
            max_duration: SimDuration::from_hours(4),
        }
    }
}

impl FaultRates {
    /// The default rates scaled by `factor` (the escalation knob of the
    /// fault benches; 0 yields a plan with no windows).
    #[must_use]
    pub fn scaled(factor: f64) -> Self {
        let base = FaultRates::default();
        FaultRates {
            sensor_per_day: base.sensor_per_day * factor,
            actuator_per_day: base.actuator_per_day * factor,
            forecast_per_day: (base.forecast_per_day * factor).min(1.0),
            ..base
        }
    }
}

/// The *generating parameters* of a fault schedule — the serializable
/// spec from which [`FaultSpec::schedule`] derives a concrete
/// [`FaultPlan`].
///
/// A [`FaultPlan`] is an extensional artifact (the full window list); the
/// spec is intensional (seed + severity + any hand-built windows). Both
/// round-trip through serde, and `spec → schedule → spec` is lossless:
/// scheduling never mutates the spec, so a scenario stored as a spec
/// reproduces the exact same plan on any later run — the property that
/// makes scenarios content-addressable artifacts rather than
/// seed-plus-folklore.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the generated windows (and of noise faults).
    pub seed: u64,
    /// Severity factor applied to [`FaultRates::default`] via
    /// [`FaultRates::scaled`]; `0.0` generates nothing.
    pub severity: f64,
    /// Hand-built windows appended after the generated ones (targeted
    /// drills on top of background fault load).
    pub extra: Vec<FaultWindow>,
}

impl FaultSpec {
    /// The empty spec: schedules nothing.
    #[must_use]
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// A purely random spec at one severity.
    #[must_use]
    pub fn random(seed: u64, severity: f64) -> Self {
        FaultSpec { seed, severity, extra: Vec::new() }
    }

    /// Materialises the schedule for the given simulated days: the
    /// generated windows of [`FaultPlan::random`] plus the `extra` windows,
    /// a pure function of `(self, days, pods)`.
    #[must_use]
    pub fn schedule(&self, days: &[u64], pods: usize) -> FaultPlan {
        let mut plan = if self.severity > 0.0 {
            FaultPlan::random(self.seed, &FaultRates::scaled(self.severity), days, pods)
        } else {
            FaultPlan::with_seed(self.seed)
        };
        for w in &self.extra {
            plan = plan.with_window(*w);
        }
        plan
    }
}

/// A deterministic schedule of fault windows for a simulated year.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty plan: injects nothing and costs nothing.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying a seed (for hand-built schedules that use
    /// noise faults).
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan { seed, windows: Vec::new() }
    }

    /// Adds one window (builder style).
    #[must_use]
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.windows.push(window);
        self
    }

    /// Generates a random plan over the given simulated days. The schedule
    /// for a day depends only on `(seed, rates, day, pods)` — the same seed
    /// always yields the same plan, and adding days to the list never
    /// changes the windows of the days already present.
    #[must_use]
    pub fn random(seed: u64, rates: &FaultRates, days: &[u64], pods: usize) -> Self {
        let mut windows = Vec::new();
        let min_s = rates.min_duration.as_secs().max(60);
        let max_s = rates.max_duration.as_secs().max(min_s);
        for &day in days {
            let mut rng = StdRng::seed_from_u64(seed ^ day.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let day_start = day * SECS_PER_DAY;
            let window = |rng: &mut StdRng, kind: FaultKind| {
                let start = day_start + rng.gen_range(0..SECS_PER_DAY);
                let dur = rng.gen_range(min_s..=max_s);
                FaultWindow {
                    start: SimTime::from_secs(start),
                    end: SimTime::from_secs(start + dur),
                    kind,
                }
            };
            for _ in 0..sample_count(&mut rng, rates.sensor_per_day) {
                let pod = rng.gen_range(0..pods.max(1));
                let fault = match rng.gen_range(0..4u32) {
                    0 => SensorFault::Dropout,
                    1 => SensorFault::StuckAt(rng.gen_range(10.0..45.0)),
                    2 => {
                        // Drift away from zero in either direction.
                        let rate = rng.gen_range(0.5..3.0);
                        SensorFault::Drift {
                            c_per_hour: if rng.gen_bool(0.5) { rate } else { -rate },
                        }
                    }
                    _ => SensorFault::Noise { std_c: rng.gen_range(0.5..3.0) },
                };
                windows.push(window(&mut rng, FaultKind::Sensor { pod, fault }));
            }
            for _ in 0..sample_count(&mut rng, rates.actuator_per_day) {
                let fault = match rng.gen_range(0..3u32) {
                    0 => ActuatorFault::FanStuck { fan: FanSpeed::saturating(rng.gen_range(0.15..1.0)) },
                    1 => ActuatorFault::AcLockout,
                    _ => ActuatorFault::DamperJam,
                };
                windows.push(window(&mut rng, FaultKind::Actuator(fault)));
            }
            if rates.forecast_per_day > 0.0 && rng.gen_bool(rates.forecast_per_day.min(1.0)) {
                let kind = if rng.gen_bool(0.5) {
                    GlitchKind::Outage
                } else {
                    GlitchKind::Degraded {
                        bias: rng.gen_range(-8.0..8.0),
                        noise_std: rng.gen_range(0.0..3.0),
                    }
                };
                windows.push(FaultWindow {
                    start: SimTime::from_days(day),
                    end: SimTime::from_days(day + 1),
                    kind: FaultKind::Forecast(kind),
                });
            }
        }
        FaultPlan { seed, windows }
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled windows.
    #[must_use]
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// `true` when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// `true` if any window is active at `t`.
    #[must_use]
    pub fn any_active(&self, t: SimTime) -> bool {
        self.windows.iter().any(|w| w.covers(t))
    }

    /// The forecast-service failures this plan schedules, one entry per
    /// affected day (the first window claiming a day wins).
    #[must_use]
    pub fn forecast_glitches(&self) -> Vec<ForecastGlitch> {
        let mut out: Vec<ForecastGlitch> = Vec::new();
        for w in &self.windows {
            if let FaultKind::Forecast(kind) = w.kind {
                let last = w.end.as_secs().saturating_sub(1) / SECS_PER_DAY;
                for day in w.start.day_index()..=last {
                    if !out.iter().any(|g| g.day == day) {
                        out.push(ForecastGlitch { day, kind });
                    }
                }
            }
        }
        out
    }

    /// Applies the sensor faults active at `truth.time` to a ground-truth
    /// snapshot, producing what the controller gets to see. `last_clean`
    /// carries the most recent pre-fault value of each pod sensor across
    /// calls (the stale-hold buffer for dropout); the engine owns it and
    /// passes it back on every call.
    #[must_use]
    pub fn corrupt_readings(
        &self,
        truth: SensorReadings,
        last_clean: &mut Vec<Celsius>,
    ) -> SensorReadings {
        if self.windows.is_empty() {
            return truth;
        }
        let mut r = truth;
        let t = r.time;
        let pods = r.pod_inlets.len();
        if last_clean.len() != pods {
            *last_clean = r.pod_inlets.clone();
        }
        // Stale-hold first: a dropped-out sensor repeats its last clean
        // value; everyone else refreshes the buffer.
        let mut dropped = vec![false; pods];
        for w in self.windows.iter().filter(|w| w.covers(t)) {
            if let FaultKind::Sensor { pod, fault: SensorFault::Dropout } = w.kind {
                if pod < pods {
                    dropped[pod] = true;
                }
            }
        }
        for p in 0..pods {
            if dropped[p] {
                r.pod_inlets[p] = last_clean[p];
            } else {
                last_clean[p] = r.pod_inlets[p];
            }
        }
        // Value corruption on the sensors that still report.
        for w in self.windows.iter().filter(|w| w.covers(t)) {
            let FaultKind::Sensor { pod, fault } = w.kind else { continue };
            if pod >= pods || dropped[pod] {
                continue;
            }
            match fault {
                SensorFault::Dropout => {}
                SensorFault::StuckAt(v) => r.pod_inlets[pod] = Celsius::new(v),
                SensorFault::Drift { c_per_hour } => {
                    let hours = t.saturating_since(w.start).as_hours_f64();
                    r.pod_inlets[pod] += TempDelta::new(c_per_hour * hours);
                }
                SensorFault::Noise { std_c } => {
                    let g = unit_gaussian(self.seed, t, pod);
                    r.pod_inlets[pod] += TempDelta::new(std_c * g);
                }
            }
        }
        r
    }

    /// Maps the commanded cooling regime to what the (possibly broken)
    /// actuators actually do at `t`.
    #[must_use]
    pub fn apply_actuator(&self, t: SimTime, commanded: CoolingRegime) -> CoolingRegime {
        if self.windows.is_empty() {
            return commanded;
        }
        let mut actual = commanded;
        for w in self.windows.iter().filter(|w| w.covers(t)) {
            let FaultKind::Actuator(fault) = w.kind else { continue };
            actual = match (fault, actual) {
                (ActuatorFault::FanStuck { fan }, CoolingRegime::FreeCooling { .. }) => {
                    CoolingRegime::FreeCooling { fan }
                }
                (ActuatorFault::AcLockout, CoolingRegime::Ac { .. }) => {
                    CoolingRegime::ac_fan_only()
                }
                (ActuatorFault::DamperJam, CoolingRegime::FreeCooling { .. }) => {
                    CoolingRegime::Closed
                }
                (_, unchanged) => unchanged,
            };
        }
        actual
    }
}

/// Expected-count sampling: `floor(rate)` plus one more with probability
/// `fract(rate)`.
fn sample_count(rng: &mut StdRng, rate: f64) -> u64 {
    if rate <= 0.0 {
        return 0;
    }
    let base = rate.floor();
    let extra = u64::from(rng.gen_bool((rate - base).clamp(0.0, 1.0)));
    base as u64 + extra
}

/// A standard-normal draw that is a pure function of `(seed, time, pod)` —
/// SplitMix64 finalisation into a Box–Muller transform — so noise does not
/// depend on how many times or in what order readings are taken.
fn unit_gaussian(seed: u64, t: SimTime, pod: usize) -> f64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let h0 = splitmix(seed ^ t.as_secs().wrapping_mul(0x2545_f491_4f6c_dd1d) ^ pod as u64);
    let h1 = splitmix(h0);
    // Two uniforms in (0, 1]; u1 bounded away from 0 for the log.
    let u1 = ((h0 >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = (h1 >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coolair_units::{AbsoluteHumidity, RelativeHumidity, Watts};

    fn snapshot(t: SimTime, inlets: &[f64]) -> SensorReadings {
        SensorReadings {
            time: t,
            outside_temp: Celsius::new(10.0),
            outside_rh: RelativeHumidity::new(50.0),
            outside_abs: AbsoluteHumidity::new(4.0),
            pod_inlets: inlets.iter().map(|&v| Celsius::new(v)).collect(),
            cold_aisle_rh: RelativeHumidity::new(45.0),
            cold_aisle_abs: AbsoluteHumidity::new(6.0),
            hot_aisle: Celsius::new(30.0),
            disk_temps: vec![Celsius::new(34.0); inlets.len()],
            regime: CoolingRegime::Closed,
            cooling_power: Watts::ZERO,
            it_power: Watts::new(500.0),
            active_fraction: 0.5,
        }
    }

    fn window(start_min: u64, end_min: u64, kind: FaultKind) -> FaultWindow {
        FaultWindow {
            start: SimTime::from_secs(start_min * 60),
            end: SimTime::from_secs(end_min * 60),
            kind,
        }
    }

    #[test]
    fn empty_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut stale = Vec::new();
        let t = SimTime::from_secs(600);
        let truth = snapshot(t, &[24.0, 25.0, 23.0, 26.0]);
        assert_eq!(plan.corrupt_readings(truth.clone(), &mut stale), truth);
        assert!(stale.is_empty(), "no state touched");
        assert_eq!(plan.apply_actuator(t, CoolingRegime::ac_on()), CoolingRegime::ac_on());
        assert!(plan.forecast_glitches().is_empty());
    }

    #[test]
    fn dropout_holds_last_clean_value() {
        let plan = FaultPlan::none().with_window(window(
            10,
            100,
            FaultKind::Sensor { pod: 1, fault: SensorFault::Dropout },
        ));
        let mut stale = Vec::new();
        // Before the fault: readings flow, buffer fills.
        let before = plan.corrupt_readings(snapshot(SimTime::from_secs(300), &[24.0, 25.0, 23.0, 26.0]), &mut stale);
        assert_eq!(before.pod_inlets[1], Celsius::new(25.0));
        // During: pod 1 freezes at its last clean value while truth moves.
        let during = plan.corrupt_readings(snapshot(SimTime::from_secs(1200), &[24.5, 29.0, 23.5, 26.5]), &mut stale);
        assert_eq!(during.pod_inlets[1], Celsius::new(25.0), "stale-hold");
        assert_eq!(during.pod_inlets[0], Celsius::new(24.5), "others untouched");
        // After: live again.
        let after = plan.corrupt_readings(snapshot(SimTime::from_secs(6060), &[24.0, 28.0, 23.0, 26.0]), &mut stale);
        assert_eq!(after.pod_inlets[1], Celsius::new(28.0));
    }

    #[test]
    fn stuck_drift_and_noise_corrupt_values() {
        let plan = FaultPlan::with_seed(3)
            .with_window(window(0, 600, FaultKind::Sensor { pod: 0, fault: SensorFault::StuckAt(40.0) }))
            .with_window(window(
                0,
                600,
                FaultKind::Sensor { pod: 1, fault: SensorFault::Drift { c_per_hour: 2.0 } },
            ))
            .with_window(window(
                0,
                600,
                FaultKind::Sensor { pod: 2, fault: SensorFault::Noise { std_c: 1.0 } },
            ));
        let mut stale = Vec::new();
        // 30 minutes in: drift has accumulated 1 °C.
        let t = SimTime::from_secs(1800);
        let r = plan.corrupt_readings(snapshot(t, &[24.0, 24.0, 24.0, 24.0]), &mut stale);
        assert_eq!(r.pod_inlets[0], Celsius::new(40.0));
        assert!((r.pod_inlets[1].value() - 25.0).abs() < 1e-12);
        assert!((r.pod_inlets[2].value() - 24.0).abs() > 1e-9, "noise moved the value");
        assert_eq!(r.pod_inlets[3], Celsius::new(24.0));
        // Noise is a pure function of (seed, t, pod): same call, same value.
        let mut stale2 = Vec::new();
        let r2 = plan.corrupt_readings(snapshot(t, &[24.0, 24.0, 24.0, 24.0]), &mut stale2);
        assert_eq!(r.pod_inlets[2], r2.pod_inlets[2]);
    }

    #[test]
    fn actuator_faults_degrade_commands() {
        let t = SimTime::from_secs(60);
        let jam = FaultPlan::none().with_window(window(0, 10, FaultKind::Actuator(ActuatorFault::DamperJam)));
        assert_eq!(
            jam.apply_actuator(t, CoolingRegime::free_cooling(FanSpeed::MAX)),
            CoolingRegime::Closed
        );
        assert_eq!(jam.apply_actuator(t, CoolingRegime::ac_on()), CoolingRegime::ac_on());

        let lockout = FaultPlan::none().with_window(window(0, 10, FaultKind::Actuator(ActuatorFault::AcLockout)));
        assert_eq!(lockout.apply_actuator(t, CoolingRegime::ac_on()), CoolingRegime::ac_fan_only());

        let stuck = FaultPlan::none().with_window(window(
            0,
            10,
            FaultKind::Actuator(ActuatorFault::FanStuck { fan: FanSpeed::PARASOL_MIN }),
        ));
        assert_eq!(
            stuck.apply_actuator(t, CoolingRegime::free_cooling(FanSpeed::MAX)),
            CoolingRegime::free_cooling(FanSpeed::PARASOL_MIN)
        );
        // Outside the window nothing applies.
        let late = SimTime::from_secs(1200);
        assert_eq!(
            stuck.apply_actuator(late, CoolingRegime::free_cooling(FanSpeed::MAX)),
            CoolingRegime::free_cooling(FanSpeed::MAX)
        );
    }

    #[test]
    fn random_plans_are_deterministic_and_seed_sensitive() {
        let rates = FaultRates::default();
        let days: Vec<u64> = (0..365).step_by(7).collect();
        let a = FaultPlan::random(11, &rates, &days, 4);
        let b = FaultPlan::random(11, &rates, &days, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::random(12, &rates, &days, 4);
        assert_ne!(a, c);
        // Day schedules are independent of the day list.
        let d = FaultPlan::random(11, &rates, &[14], 4);
        let day14 = |p: &FaultPlan| -> Vec<FaultWindow> {
            p.windows().iter().copied().filter(|w| w.start.day_index() == 14).collect()
        };
        assert_eq!(day14(&a), day14(&d));
    }

    #[test]
    fn scaled_zero_rates_yield_empty_plans() {
        let days: Vec<u64> = (0..365).step_by(7).collect();
        let plan = FaultPlan::random(5, &FaultRates::scaled(0.0), &days, 4);
        assert!(plan.is_empty());
    }

    #[test]
    fn fault_spec_schedules_deterministically_and_appends_extras() {
        let days: Vec<u64> = (0..365).step_by(30).collect();
        let drill = window(10, 100, FaultKind::Actuator(ActuatorFault::DamperJam));
        let spec = FaultSpec { seed: 7, severity: 1.5, extra: vec![drill] };
        let a = spec.schedule(&days, 4);
        let b = spec.schedule(&days, 4);
        assert_eq!(a, b, "scheduling is pure");
        assert_eq!(a.seed(), 7);
        assert_eq!(*a.windows().last().unwrap(), drill, "extras ride at the end");
        // Zero severity keeps only the extras (and the seed for noise).
        let quiet = FaultSpec { severity: 0.0, ..spec.clone() };
        assert_eq!(quiet.schedule(&days, 4).windows().len(), 1);
        assert!(FaultSpec::none().schedule(&days, 4).is_empty());
        // The spec itself round-trips through serde untouched.
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.schedule(&days, 4), a);
    }

    #[test]
    fn forecast_windows_become_glitches() {
        let plan = FaultPlan::none().with_window(FaultWindow {
            start: SimTime::from_days(10),
            end: SimTime::from_days(12),
            kind: FaultKind::Forecast(GlitchKind::Outage),
        });
        let glitches = plan.forecast_glitches();
        assert_eq!(glitches.len(), 2);
        assert_eq!(glitches[0].day, 10);
        assert_eq!(glitches[1].day, 11);
    }
}
