//! Year-long evaluation runner (§5.1: "to limit the length of our year-long
//! Smooth-Sim simulations, we only simulate the first day of each week of
//! the year. We repeat the workload for each of those days").

use coolair::{
    train_cooling_model, CoolAir, CoolAirConfig, CoolingModel, SupervisedCoolAir,
    SupervisorConfig, TrainingConfig, Version,
};
use coolair_thermal::{Infrastructure, PlantConfig, TksConfig, TksController};
use coolair_units::Celsius;
use coolair_weather::{ForecastError, Forecaster, Location, TmySeries};
use coolair_workload::{facebook_trace, nutch_trace, Cluster, ClusterConfig, Trace, TraceKind};
use serde::{Deserialize, Serialize};

use crate::engine::{SimConfig, SimController, Simulation};
use crate::faults::FaultPlan;
use crate::metrics::{AnnualSummary, DayRecord};

/// Which system to evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SystemSpec {
    /// The §5.1 baseline: extended TKS at a 30 °C setpoint with humidity
    /// control, all servers active.
    Baseline,
    /// The baseline with a custom setpoint (§5.2 maximum-temperature
    /// study).
    BaselineWithSetpoint(Celsius),
    /// A CoolAir version with the default configuration.
    CoolAir(Version),
    /// A CoolAir version with a custom configuration.
    CoolAirWith(Version, CoolAirConfig),
    /// A CoolAir version wrapped in the degraded-mode supervisor (sensor
    /// validation, fallback ladder, hard overtemp failsafe).
    Supervised(Version),
    /// A supervised CoolAir version with custom controller *and* supervisor
    /// configurations — the variant the robust tuner evaluates, since the
    /// design vector reaches both the band geometry and the ladder trip
    /// points.
    SupervisedWith(Version, CoolAirConfig, SupervisorConfig),
}

impl SystemSpec {
    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            SystemSpec::Baseline => "Baseline".into(),
            SystemSpec::BaselineWithSetpoint(sp) => format!("Baseline@{:.0}", sp.value()),
            SystemSpec::CoolAir(v) => v.name().into(),
            SystemSpec::CoolAirWith(v, _) => v.name().into(),
            SystemSpec::Supervised(v) => format!("{}+SV", v.name()),
            SystemSpec::SupervisedWith(v, _, _) => format!("{}+SV*", v.name()),
        }
    }
}

/// Annual-run parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnualConfig {
    /// Simulate one day every `stride` days (7 → the paper's 52-day year).
    pub stride: u64,
    /// Infrastructure for the evaluation plant (the paper's headline
    /// results use the smooth infrastructure; Real-Sim uses Parasol).
    pub infrastructure: Infrastructure,
    /// Weather seed.
    pub weather_seed: u64,
    /// Trace generation seed.
    pub trace_seed: u64,
    /// Cooling Model training length (training always runs on the Parasol
    /// plant, as in §4.2).
    pub training: TrainingConfig,
    /// Forecast error model (perfect by default, as with TMY data).
    pub forecast_error: ForecastError,
    /// Use deferrable jobs (6-hour start deadlines) — required by the DEF
    /// versions.
    pub deferrable: bool,
    /// Optional adiabatic pre-cooler effectiveness fitted to the container
    /// intake (§2's evaporative-cooling option; an extension experiment).
    pub adiabatic: Option<f64>,
    /// Override the plant's AC condenser derating (ablation experiments).
    pub ac_condenser_derate_per_c: Option<f64>,
    /// Override the plant's AC latent-load factor (ablation experiments).
    pub ac_latent_factor: Option<f64>,
    /// Injected sensor/actuator/forecast faults ([`FaultPlan::none`] by
    /// default, which leaves the loop bit-identical to a run without the
    /// fault layer).
    pub faults: FaultPlan,
    /// Override the cluster's covering-subset size (the robust tuner's
    /// reach into [`ClusterConfig::parasol`]'s default of 8). `None`
    /// keeps the default; the value is clamped to the server count.
    pub covering_count: Option<usize>,
    /// Engine tuning.
    pub engine: SimConfig,
}

impl Default for AnnualConfig {
    fn default() -> Self {
        AnnualConfig {
            stride: 7,
            infrastructure: Infrastructure::Smooth,
            weather_seed: 42,
            trace_seed: 1,
            training: TrainingConfig::default(),
            forecast_error: ForecastError::PERFECT,
            deferrable: false,
            adiabatic: None,
            ac_condenser_derate_per_c: None,
            ac_latent_factor: None,
            faults: FaultPlan::none(),
            covering_count: None,
            engine: SimConfig::default(),
        }
    }
}

impl AnnualConfig {
    /// A fast configuration for tests: monthly sampling and short training.
    #[must_use]
    pub fn quick() -> Self {
        AnnualConfig {
            stride: 30,
            training: TrainingConfig::quick(),
            ..AnnualConfig::default()
        }
    }

    /// The calendar days simulated.
    #[must_use]
    pub fn sampled_days(&self) -> Vec<u64> {
        (0..365).step_by(self.stride.max(1) as usize).collect()
    }
}

/// Builds the day-long trace for a config (shared with the episode layer).
pub(crate) fn build_trace(kind: TraceKind, cfg: &AnnualConfig) -> Trace {
    let base = match kind {
        TraceKind::Facebook => facebook_trace(cfg.trace_seed),
        TraceKind::Nutch => nutch_trace(cfg.trace_seed),
    };
    if cfg.deferrable {
        base.with_deadlines(CoolAirConfig::default().deferral_deadline)
    } else {
        base
    }
}

/// Trains the Cooling Model for a location (on the Parasol plant, under the
/// location's weather, as the paper does for Parasol's site).
#[must_use]
pub fn train_for_location(location: &Location, cfg: &AnnualConfig) -> CoolingModel {
    let tmy = TmySeries::generate(location, cfg.weather_seed);
    train_cooling_model(&tmy, &cfg.training)
}

/// Runs one system for a year at a location and returns its summary.
///
/// # Panics
///
/// Panics if a DEF CoolAir version is run without `cfg.deferrable`.
#[must_use]
pub fn run_annual(
    system: &SystemSpec,
    location: &Location,
    trace: TraceKind,
    cfg: &AnnualConfig,
) -> AnnualSummary {
    let model = match system {
        SystemSpec::CoolAir(_)
        | SystemSpec::CoolAirWith(..)
        | SystemSpec::Supervised(_)
        | SystemSpec::SupervisedWith(..) => Some(train_for_location(location, cfg)),
        _ => None,
    };
    run_annual_with_model(system, location, trace, cfg, model)
}

/// Like [`run_annual`] but reuses a pre-trained model (train once, evaluate
/// many versions — how the figure benches amortise the §4.2 campaign).
#[must_use]
pub fn run_annual_with_model(
    system: &SystemSpec,
    location: &Location,
    trace: TraceKind,
    cfg: &AnnualConfig,
    model: Option<CoolingModel>,
) -> AnnualSummary {
    run_annual_traced(system, location, trace, cfg, model, coolair_telemetry::Telemetry::disabled())
}

/// Like [`run_annual_with_model`] but with a telemetry bus attached to the
/// engine and controller for the whole run. Telemetry never feeds back into
/// the loop: the returned summary is bit-identical whether the bus is
/// enabled, disabled, or absent.
#[must_use]
pub fn run_annual_traced(
    system: &SystemSpec,
    location: &Location,
    trace: TraceKind,
    cfg: &AnnualConfig,
    model: Option<CoolingModel>,
    telemetry: coolair_telemetry::Telemetry,
) -> AnnualSummary {
    run_days_traced(system, location, trace, cfg, model, &cfg.sampled_days(), telemetry)
}

/// Like [`run_annual_traced`] but over an explicit list of calendar days
/// instead of the config's stride sampling (how the CLI `run` command
/// traces a single day).
#[must_use]
pub fn run_days_traced(
    system: &SystemSpec,
    location: &Location,
    trace: TraceKind,
    cfg: &AnnualConfig,
    model: Option<CoolingModel>,
    sampled_days: &[u64],
    telemetry: coolair_telemetry::Telemetry,
) -> AnnualSummary {
    run_days_loaded(system, location, trace, cfg, model, sampled_days, true, telemetry)
}

/// Like [`run_days_traced`] but with an explicit `loaded` switch: when
/// `false`, no trace jobs are submitted, so the container idles on its
/// covering subset — the fleet layer's "light" lane, a container whose
/// deferrable batch load migrated elsewhere. `loaded == true` is exactly
/// [`run_days_traced`] (same code path, bit for bit).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_days_loaded(
    system: &SystemSpec,
    location: &Location,
    trace: TraceKind,
    cfg: &AnnualConfig,
    model: Option<CoolingModel>,
    sampled_days: &[u64],
    loaded: bool,
    telemetry: coolair_telemetry::Telemetry,
) -> AnnualSummary {
    let tmy = TmySeries::generate(location, cfg.weather_seed);
    let trace = build_trace(trace, cfg);

    // Forecast-service faults act at the provider, so every CoolAir-family
    // controller (supervised or not) sees the same corrupted forecasts.
    let forecaster = || {
        Forecaster::new(tmy.clone(), cfg.forecast_error, cfg.weather_seed)
            .with_glitches(cfg.faults.forecast_glitches())
    };
    let controller = match system {
        SystemSpec::Baseline => {
            SimController::Baseline(TksController::new(TksConfig::baseline()))
        }
        SystemSpec::BaselineWithSetpoint(sp) => {
            SimController::Baseline(TksController::new(TksConfig::baseline_with_setpoint(*sp)))
        }
        SystemSpec::CoolAir(version) => SimController::CoolAir(Box::new(CoolAir::new(
            *version,
            CoolAirConfig::default(),
            model.expect("model trained above"),
            forecaster(),
            cfg.infrastructure,
        ))),
        SystemSpec::CoolAirWith(version, ca_cfg) => {
            SimController::CoolAir(Box::new(CoolAir::new(
                *version,
                ca_cfg.clone(),
                model.expect("model trained above"),
                forecaster(),
                cfg.infrastructure,
            )))
        }
        SystemSpec::Supervised(version) => {
            SimController::Supervised(Box::new(SupervisedCoolAir::new(
                CoolAir::new(
                    *version,
                    CoolAirConfig::default(),
                    model.expect("model trained above"),
                    forecaster(),
                    cfg.infrastructure,
                ),
                SupervisorConfig::default(),
            )))
        }
        SystemSpec::SupervisedWith(version, ca_cfg, sv_cfg) => {
            SimController::Supervised(Box::new(SupervisedCoolAir::new(
                CoolAir::new(
                    *version,
                    ca_cfg.clone(),
                    model.expect("model trained above"),
                    forecaster(),
                    cfg.infrastructure,
                ),
                *sv_cfg,
            )))
        }
    };
    let deferrable_version = match &controller {
        SimController::CoolAir(ca) => Some(ca.version()),
        SimController::Supervised(sv) => Some(sv.inner().version()),
        SimController::Baseline(_) => None,
    };
    if let Some(version) = deferrable_version {
        assert!(
            !version.is_deferrable() || cfg.deferrable,
            "{version} needs deferrable jobs; set AnnualConfig::deferrable",
        );
    }

    let mut plant_config = match cfg.infrastructure {
        Infrastructure::Parasol => PlantConfig::parasol(),
        Infrastructure::Smooth => PlantConfig::smooth(),
    };
    plant_config.adiabatic_effectiveness = cfg.adiabatic;
    if let Some(v) = cfg.ac_condenser_derate_per_c {
        plant_config.ac_condenser_derate_per_c = v;
    }
    if let Some(v) = cfg.ac_latent_factor {
        plant_config.ac_latent_factor = v;
    }
    let mut cluster_config = ClusterConfig::parasol();
    if let Some(covering) = cfg.covering_count {
        cluster_config.covering_count = covering.clamp(1, cluster_config.total_servers);
    }
    let mut sim = Simulation::new(
        controller,
        plant_config,
        Cluster::new(cluster_config),
        tmy,
        cfg.engine.clone(),
    );
    sim.set_fault_plan(cfg.faults.clone());
    sim.set_telemetry(telemetry);

    let mut days: Vec<DayRecord> = Vec::new();
    for &day in sampled_days {
        let jobs = if loaded { trace.jobs_for_day(day) } else { Vec::new() };
        let out = sim.run_day(day, jobs);
        days.push(out.record);
    }
    AnnualSummary::new(days)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_annual_baseline_runs() {
        let cfg = AnnualConfig::quick();
        let s = run_annual(&SystemSpec::Baseline, &Location::newark(), TraceKind::Facebook, &cfg);
        assert_eq!(s.len(), cfg.sampled_days().len());
        assert!(s.pue() > 1.05 && s.pue() < 2.5, "PUE {}", s.pue());
        assert!(s.avg_worst_range() > 1.0, "range {}", s.avg_worst_range());
    }

    #[test]
    #[should_panic(expected = "needs deferrable jobs")]
    fn def_version_requires_deferrable_trace() {
        let cfg = AnnualConfig::quick();
        let _ = run_annual(
            &SystemSpec::CoolAir(Version::AllDef),
            &Location::newark(),
            TraceKind::Facebook,
            &cfg,
        );
    }

    #[test]
    fn sampled_days_follow_stride() {
        let cfg = AnnualConfig::default();
        let days = cfg.sampled_days();
        assert_eq!(days.len(), 53); // 0, 7, …, 364
        assert_eq!(days[0], 0);
        assert_eq!(days[1], 7);
        assert_eq!(*days.last().unwrap(), 364);
    }
}
