//! The content-addressed artifact store.
//!
//! Artifacts live at `<root>/<kind>/<digest>.json`, where the digest is
//! the stable hash of the producing job's defining content (for a sweep
//! shard: location + `AnnualConfig`, which embeds the `TrainingConfig`).
//! Writes go through a temp file and an atomic rename, so a kill can never
//! leave a torn artifact — the store either has the complete JSON or
//! nothing.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::hash::Digest;

/// Why an artifact could not be loaded. The distinction matters to
/// callers that answer for the store over a network or an exit code:
/// *absent* is the caller's mistake (404), *corrupt* or *unreadable* is
/// the store's (500).
#[derive(Debug)]
pub enum ArtifactError {
    /// No artifact exists under this `(kind, digest)`.
    NotFound,
    /// The artifact file exists but its JSON does not parse (torn write
    /// or foreign content).
    Corrupt(String),
    /// The artifact file exists but could not be read.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::NotFound => write!(f, "artifact not found"),
            ArtifactError::Corrupt(e) => write!(f, "artifact corrupt: {e}"),
            ArtifactError::Io(e) => write!(f, "artifact unreadable: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// A directory of content-addressed JSON artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if absent) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors.
    pub fn open(root: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(root)?;
        Ok(ArtifactStore { root: root.to_path_buf() })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an artifact lives at.
    #[must_use]
    pub fn path_for(&self, kind: &str, digest: Digest) -> PathBuf {
        self.root.join(kind).join(format!("{digest}.json"))
    }

    /// Whether a complete artifact exists.
    #[must_use]
    pub fn contains(&self, kind: &str, digest: Digest) -> bool {
        self.path_for(kind, digest).is_file()
    }

    /// Loads an artifact, or `None` when absent or unreadable (an
    /// unreadable artifact is treated as a cache miss, never an error —
    /// the job simply re-runs).
    #[must_use]
    pub fn get<T: DeserializeOwned>(&self, kind: &str, digest: Digest) -> Option<T> {
        self.try_get(kind, digest).ok()
    }

    /// Loads an artifact, distinguishing *absent* from *corrupt* and
    /// *unreadable*. The executor's cache probe wants [`ArtifactStore::get`]
    /// (any failure is a miss); result backends answering for a specific
    /// artifact — `GET /jobs/{id}`, `coolair report` — want this.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::NotFound`] when no file exists,
    /// [`ArtifactError::Corrupt`] when its JSON does not parse,
    /// [`ArtifactError::Io`] when it cannot be read.
    pub fn try_get<T: DeserializeOwned>(
        &self,
        kind: &str,
        digest: Digest,
    ) -> Result<T, ArtifactError> {
        let path = self.path_for(kind, digest);
        let bytes = std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                ArtifactError::NotFound
            } else {
                ArtifactError::Io(e)
            }
        })?;
        serde_json::from_slice(&bytes).map_err(|e| ArtifactError::Corrupt(e.to_string()))
    }

    /// Stores an artifact atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates serialization and file I/O errors.
    pub fn put<T: Serialize>(
        &self,
        kind: &str,
        digest: Digest,
        value: &T,
    ) -> std::io::Result<()> {
        let path = self.path_for(kind, digest);
        let dir = self.root.join(kind);
        std::fs::create_dir_all(&dir)?;
        let json = serde_json::to_vec(value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = dir.join(format!("{digest}.json.tmp"));
        std::fs::write(&tmp, &json)?;
        std::fs::rename(&tmp, &path)
    }

    /// Number of complete artifacts under one kind (0 for an absent kind).
    #[must_use]
    pub fn count(&self, kind: &str) -> usize {
        std::fs::read_dir(self.root.join(kind)).map_or(0, |rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                .count()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::stable_digest;

    fn temp_store(name: &str) -> ArtifactStore {
        let root = std::env::temp_dir().join("coolair_runner_store_test").join(name);
        let _ = std::fs::remove_dir_all(&root);
        ArtifactStore::open(&root).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let store = temp_store("round_trip");
        let digest = stable_digest(&("Newark", 42u64));
        assert!(!store.contains("probe", digest));
        store.put("probe", digest, &vec![1.5f64, 0.1, -3.25]).unwrap();
        assert!(store.contains("probe", digest));
        let back: Vec<f64> = store.get("probe", digest).unwrap();
        assert_eq!(back, vec![1.5, 0.1, -3.25]);
        assert_eq!(store.count("probe"), 1);
        assert_eq!(store.count("absent-kind"), 0);
    }

    #[test]
    fn corrupt_artifact_reads_as_miss() {
        let store = temp_store("corrupt");
        let digest = stable_digest(&1u8);
        store.put("probe", digest, &7u32).unwrap();
        std::fs::write(store.path_for("probe", digest), b"{ torn").unwrap();
        assert_eq!(store.get::<u32>("probe", digest), None);
    }

    #[test]
    fn try_get_distinguishes_absent_from_corrupt() {
        let store = temp_store("try_get");
        let digest = stable_digest(&9u8);
        assert!(matches!(
            store.try_get::<u32>("probe", digest),
            Err(ArtifactError::NotFound)
        ));
        store.put("probe", digest, &7u32).unwrap();
        assert_eq!(store.try_get::<u32>("probe", digest).unwrap(), 7);
        std::fs::write(store.path_for("probe", digest), b"{ torn").unwrap();
        assert!(matches!(
            store.try_get::<u32>("probe", digest),
            Err(ArtifactError::Corrupt(_))
        ));
    }

    #[test]
    fn kinds_are_namespaced() {
        let store = temp_store("namespaced");
        let digest = stable_digest(&1u8);
        store.put("a", digest, &1u32).unwrap();
        assert!(store.get::<u32>("b", digest).is_none());
    }
}
