//! Deterministic experiment orchestration for the CoolAir workspace.
//!
//! The paper's heaviest traffic path — the 1520-location world sweep
//! behind Figures 12/13 — used to run as a one-shot thread scope: a panic
//! or kill lost every completed location, and every rerun retrained every
//! Cooling Model from scratch. This crate turns every expensive experiment
//! into a serializable, content-addressed [`Job`] executed by a crossbeam
//! work-stealing pool, with:
//!
//! * **per-job panic isolation** — a panicking job is caught, retried up
//!   to a bounded attempt budget, and recorded as failed; it never aborts
//!   the batch ([`Executor`]);
//! * **a JSONL journal** — each completion appends one line, so a killed
//!   run resumes by replaying the journal and skipping finished shards
//!   ([`Journal`]); resume of a partial run is bit-identical to a fresh
//!   run under the same seed because jobs are pure functions of their
//!   specs;
//! * **a content-addressed artifact store** — outputs are cached at
//!   `artifacts/<kind>/<digest>.json` keyed by a stable FNV-1a hash of the
//!   job's defining content ([`ArtifactStore`], [`stable_digest`]), so a
//!   warm rerun serves trained models and sweep points without executing
//!   anything;
//! * **telemetry threading** — jobs queued/running/done/failed, cache
//!   hits, resumes and retries flow through the existing
//!   `coolair-telemetry` event bus ([`coolair_telemetry::Event::JobState`])
//!   and metrics registry.
//!
//! The crate is deliberately simulation-agnostic: it depends only on the
//! telemetry bus. `coolair-sim` defines the concrete job types (training
//! campaigns, annual runs, sweep shards) and `coolair-cli` drives them via
//! `coolair sweep --store <dir> --resume`.
//!
//! # Example
//!
//! ```
//! use coolair_runner::{stable_digest, Digest, Executor, Job, Telemetry};
//!
//! struct Square(u64);
//! impl Job for Square {
//!     type Output = u64;
//!     fn kind(&self) -> &'static str { "square" }
//!     fn digest(&self) -> Digest { stable_digest(&self.0) }
//!     fn label(&self) -> String { format!("{}^2", self.0) }
//!     fn run(&self) -> u64 { self.0 * self.0 }
//! }
//!
//! let exec = Executor::in_memory(2, Telemetry::disabled());
//! let out = exec.run(&[Square(3), Square(4)]);
//! let values: Vec<u64> = out.into_iter().filter_map(|r| r.into_output()).collect();
//! assert_eq!(values, [9, 16]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod executor;
mod hash;
mod job;
mod journal;
mod pool;
mod store;

pub use coolair_telemetry::Telemetry;
pub use executor::{Executor, ExecutorConfig, ProgressSnapshot};
pub use hash::{fnv1a, stable_digest, Digest};
pub use job::{panic_message, Job, JobResult};
pub use journal::{replay, Journal, JournalEntry, JournalStatus};
pub use pool::{run_stealing, worker_threads, DEFAULT_THREADS};
pub use store::{ArtifactError, ArtifactStore};
