//! The job executor: resume, cache, schedule, isolate, retry, record.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use coolair_telemetry::{Event, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::job::{panic_message, Job, JobResult};
use crate::journal::{Journal, JournalEntry, JournalStatus};
use crate::pool::{run_stealing, worker_threads};
use crate::store::ArtifactStore;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads (`0` → available parallelism).
    pub threads: usize,
    /// Attempts per job before it is recorded as failed (≥ 1). A
    /// panicking job never takes the rest of the run down.
    pub max_attempts: u32,
    /// Store directory holding `artifacts/` and `journal.jsonl`. `None`
    /// runs fully in memory: no caching, no resume, no journal.
    pub store_dir: Option<PathBuf>,
    /// Replay the existing journal (skip its completed jobs). When
    /// `false`, an existing journal is truncated and the run starts a
    /// fresh log — but intact artifacts still serve as a warm cache.
    pub resume: bool,
    /// Progress bus: per-state counters, a `runner.running` gauge, and one
    /// [`Event::JobState`] per terminal transition.
    pub telemetry: Telemetry,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            threads: 0,
            max_attempts: 2,
            store_dir: None,
            resume: false,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A point-in-time view of executor progress, suitable for `queue`-style
/// status output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Jobs that needed execution this run.
    pub scheduled: u64,
    /// Jobs executing right now.
    pub running: u64,
    /// Jobs executed to completion this run.
    pub done: u64,
    /// Jobs that exhausted their attempt budget this run.
    pub failed: u64,
    /// Jobs served from intact artifacts without a journal entry (warm
    /// store).
    pub cache_hits: u64,
    /// Jobs skipped by journal replay (`--resume`).
    pub resumed: u64,
    /// Extra attempts consumed by retries after panics.
    pub retries: u64,
}

impl ProgressSnapshot {
    /// Fraction of concluded jobs served without execution.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let served = self.cache_hits + self.resumed;
        let total = served + self.done + self.failed;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    scheduled: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    resumed: AtomicU64,
    retries: AtomicU64,
}

/// The orchestration engine. One executor owns (at most) one store and
/// one journal; [`Executor::run`] may be called repeatedly to execute
/// phases of a campaign (e.g. all training jobs, then all sweep shards).
#[derive(Debug)]
pub struct Executor {
    threads: usize,
    max_attempts: u32,
    store: Option<ArtifactStore>,
    journal: Option<Journal>,
    /// `(kind, digest)` pairs completed according to journal replay.
    replayed: Mutex<HashSet<(String, String)>>,
    telemetry: Telemetry,
    counters: Counters,
}

impl Executor {
    /// Builds an executor from a config, opening the store and journal
    /// when a store directory is set.
    ///
    /// # Errors
    ///
    /// Propagates store/journal I/O errors.
    pub fn new(cfg: ExecutorConfig) -> std::io::Result<Self> {
        let mut store = None;
        let mut journal = None;
        let mut replayed = HashSet::new();
        if let Some(dir) = &cfg.store_dir {
            std::fs::create_dir_all(dir)?;
            store = Some(ArtifactStore::open(&dir.join("artifacts"))?);
            let journal_path = dir.join("journal.jsonl");
            if !cfg.resume {
                // Fresh log; artifacts are kept (they are the cache).
                let _ = std::fs::remove_file(&journal_path);
            }
            let (j, entries) = Journal::open(&journal_path)?;
            for e in entries {
                if e.status == JournalStatus::Done {
                    replayed.insert((e.kind, e.digest));
                }
            }
            journal = Some(j);
        }
        Ok(Executor {
            threads: worker_threads(cfg.threads),
            max_attempts: cfg.max_attempts.max(1),
            store,
            journal,
            replayed: Mutex::new(replayed),
            telemetry: cfg.telemetry,
            counters: Counters::default(),
        })
    }

    /// A store-less in-memory executor (every job executes).
    ///
    /// # Panics
    ///
    /// Never — the store-less path has no I/O to fail.
    #[must_use]
    pub fn in_memory(threads: usize, telemetry: Telemetry) -> Self {
        Executor::new(ExecutorConfig {
            threads,
            telemetry,
            ..ExecutorConfig::default()
        })
        .expect("in-memory executor cannot fail to open")
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The executor's artifact store, when one is attached.
    #[must_use]
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// A snapshot of cumulative progress across all `run` calls.
    #[must_use]
    pub fn progress(&self) -> ProgressSnapshot {
        let c = &self.counters;
        ProgressSnapshot {
            scheduled: c.scheduled.load(Ordering::Relaxed),
            running: c.running.load(Ordering::Relaxed),
            done: c.done.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            resumed: c.resumed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
        }
    }

    /// Executes a batch of jobs and returns one result per job, in input
    /// order (per-index slots — deterministic by construction, no sorting).
    ///
    /// Each job is first resolved against the journal replay set and the
    /// artifact store; only unresolved jobs are scheduled onto the
    /// work-stealing pool. A panicking job is caught, retried up to the
    /// attempt budget, and recorded as failed — never allowed to abort
    /// the batch.
    pub fn run<J: Job>(&self, jobs: &[J]) -> Vec<JobResult<J::Output>> {
        let mut slots: Vec<Mutex<Option<JobResult<J::Output>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        // Phase 1: serve from journal replay and warm artifacts.
        let mut pending: Vec<usize> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            match self.resolve_cached(job) {
                Some(result) => *slots[i].lock() = Some(result),
                None => pending.push(i),
            }
        }

        // Phase 2: execute the remainder on the pool.
        self.counters.scheduled.fetch_add(pending.len() as u64, Ordering::Relaxed);
        self.telemetry.counter_add("runner.scheduled", pending.len() as u64);
        run_stealing(&pending, self.threads, |i| {
            let result = self.execute(&jobs[i]);
            *slots[i].lock() = Some(result);
        });

        slots
            .iter_mut()
            .map(|slot| slot.lock().take().expect("every slot filled"))
            .collect()
    }

    /// Tries to serve one job from the journal replay set or the store.
    fn resolve_cached<J: Job>(&self, job: &J) -> Option<JobResult<J::Output>> {
        let store = self.store.as_ref()?;
        let digest = job.digest();
        let from_journal = self
            .replayed
            .lock()
            .contains(&(job.kind().to_string(), digest.to_string()));
        let value: J::Output = store.get(job.kind(), digest)?;
        let (counter, name) = if from_journal {
            (&self.counters.resumed, "resumed")
        } else {
            (&self.counters.cache_hits, "cache-hit")
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter_add(&format!("runner.{name}"), 1);
        self.emit_state(job, name, 0);
        Some(JobResult::Cached(value))
    }

    /// Executes one job with panic isolation and bounded retries.
    fn execute<J: Job>(&self, job: &J) -> JobResult<J::Output> {
        self.counters.running.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .gauge_set("runner.running", self.counters.running.load(Ordering::Relaxed) as f64);
        let mut last_error = String::new();
        let mut outcome = None;
        for attempt in 1..=self.max_attempts {
            self.telemetry.counter_add(&format!("runner.run.{}", job.kind()), 1);
            match catch_unwind(AssertUnwindSafe(|| job.run())) {
                Ok(output) => {
                    outcome = Some(output);
                    break;
                }
                Err(payload) => {
                    last_error = panic_message(payload.as_ref());
                    if attempt < self.max_attempts {
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        self.telemetry.counter_add("runner.retry", 1);
                        self.emit_state(job, "retry", attempt);
                    }
                }
            }
        }
        self.counters.running.fetch_sub(1, Ordering::Relaxed);
        self.telemetry
            .gauge_set("runner.running", self.counters.running.load(Ordering::Relaxed) as f64);

        match outcome {
            Some(output) => {
                // Artifact first (atomic rename), then the journal line:
                // a replayed `Done` entry always has its artifact.
                if let Some(store) = &self.store {
                    if let Err(e) = store.put(job.kind(), job.digest(), &output) {
                        eprintln!(
                            "runner: could not store artifact {}/{}: {e}",
                            job.kind(),
                            job.digest()
                        );
                    }
                }
                self.journal_append(job, JournalStatus::Done, 1);
                self.counters.done.fetch_add(1, Ordering::Relaxed);
                self.telemetry.counter_add("runner.done", 1);
                self.emit_state(job, "done", 1);
                JobResult::Computed(output)
            }
            None => {
                self.journal_append(job, JournalStatus::Failed, self.max_attempts);
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                self.telemetry.counter_add("runner.failed", 1);
                self.emit_state(job, "failed", self.max_attempts);
                JobResult::Failed { attempts: self.max_attempts, error: last_error }
            }
        }
    }

    fn journal_append<J: Job>(&self, job: &J, status: JournalStatus, attempts: u32) {
        if let Some(journal) = &self.journal {
            journal.append(&JournalEntry {
                kind: job.kind().to_string(),
                digest: job.digest().to_string(),
                label: job.label(),
                status,
                attempts,
            });
        }
    }

    fn emit_state<J: Job>(&self, job: &J, state: &str, attempt: u32) {
        self.telemetry.emit_with(|| Event::JobState {
            kind: job.kind().to_string(),
            label: job.label(),
            state: state.to_string(),
            attempt,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{stable_digest, Digest};

    /// Doubles its input; optionally panics on every attempt.
    struct Doubler {
        input: u64,
        panic_on: bool,
    }

    impl Job for Doubler {
        type Output = u64;
        fn kind(&self) -> &'static str {
            "doubler"
        }
        fn digest(&self) -> Digest {
            stable_digest(&self.input)
        }
        fn label(&self) -> String {
            format!("double({})", self.input)
        }
        fn run(&self) -> u64 {
            assert!(!self.panic_on, "injected panic");
            self.input * 2
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coolair_runner_exec_test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn jobs(n: u64) -> Vec<Doubler> {
        (0..n).map(|input| Doubler { input, panic_on: false }).collect()
    }

    #[test]
    fn in_memory_runs_everything_in_order() {
        let exec = Executor::in_memory(3, Telemetry::disabled());
        let out = exec.run(&jobs(17));
        let values: Vec<u64> = out.into_iter().map(|r| r.into_output().unwrap()).collect();
        assert_eq!(values, (0..17).map(|x| x * 2).collect::<Vec<_>>());
        let p = exec.progress();
        assert_eq!((p.scheduled, p.done, p.failed, p.cache_hits), (17, 17, 0, 0));
    }

    #[test]
    fn warm_store_serves_without_execution() {
        let dir = temp_dir("warm");
        let cfg = |resume| ExecutorConfig {
            threads: 2,
            store_dir: Some(dir.clone()),
            resume,
            ..ExecutorConfig::default()
        };
        let cold = Executor::new(cfg(false)).unwrap();
        let first = cold.run(&jobs(9));
        assert!(first.iter().all(|r| matches!(r, JobResult::Computed(_))));

        // Second executor, fresh journal: artifacts alone serve the batch.
        let warm = Executor::new(cfg(false)).unwrap();
        let second = warm.run(&jobs(9));
        assert!(second.iter().all(JobResult::is_cached));
        let p = warm.progress();
        assert_eq!((p.scheduled, p.done, p.cache_hits, p.resumed), (0, 0, 9, 0));
        assert!((p.cache_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn journal_replay_counts_as_resumed() {
        let dir = temp_dir("resumed");
        let cold = Executor::new(ExecutorConfig {
            threads: 2,
            store_dir: Some(dir.clone()),
            ..ExecutorConfig::default()
        })
        .unwrap();
        cold.run(&jobs(5));
        drop(cold);

        let resumed = Executor::new(ExecutorConfig {
            threads: 2,
            store_dir: Some(dir.clone()),
            resume: true,
            ..ExecutorConfig::default()
        })
        .unwrap();
        let out = resumed.run(&jobs(5));
        assert!(out.iter().all(JobResult::is_cached));
        let p = resumed.progress();
        assert_eq!((p.resumed, p.cache_hits, p.scheduled), (5, 0, 0));
    }

    #[test]
    fn panicking_job_is_failed_not_fatal() {
        let exec = Executor::in_memory(2, Telemetry::discard());
        let batch = vec![
            Doubler { input: 1, panic_on: false },
            Doubler { input: 2, panic_on: true },
            Doubler { input: 3, panic_on: false },
        ];
        let out = exec.run(&batch);
        assert_eq!(out[0], JobResult::Computed(2));
        assert!(out[1].is_failed());
        if let JobResult::Failed { attempts, error } = &out[1] {
            assert_eq!(*attempts, 2);
            assert!(error.contains("injected panic"), "got: {error}");
        }
        assert_eq!(out[2], JobResult::Computed(6));
        let p = exec.progress();
        assert_eq!((p.done, p.failed, p.retries), (2, 1, 1));
        let m = exec.telemetry.metrics();
        assert_eq!(m.counter("runner.failed"), 1);
        assert_eq!(m.counter("runner.retry"), 1);
        assert_eq!(m.counter("runner.run.doubler"), 4, "2 ok + 2 attempts on the panicker");
    }

    #[test]
    fn store_probe_ignores_corrupt_artifacts() {
        let dir = temp_dir("corrupt");
        let exec = Executor::new(ExecutorConfig {
            threads: 1,
            store_dir: Some(dir.clone()),
            ..ExecutorConfig::default()
        })
        .unwrap();
        exec.run(&jobs(1));
        // Corrupt the artifact; a fresh run must recompute, not fail.
        let store = exec.store().unwrap();
        let path = store.path_for("doubler", stable_digest(&0u64));
        std::fs::write(&path, b"{ torn").unwrap();
        drop(exec);

        let again = Executor::new(ExecutorConfig {
            threads: 1,
            store_dir: Some(dir),
            resume: true,
            ..ExecutorConfig::default()
        })
        .unwrap();
        let out = again.run(&jobs(1));
        assert_eq!(out[0], JobResult::Computed(0));
        assert_eq!(again.progress().done, 1);
    }
}
