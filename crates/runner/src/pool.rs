//! The crossbeam work-stealing worker pool.
//!
//! Tasks (plain indices into the caller's job slice) are pre-distributed
//! round-robin across per-worker FIFO deques; an idle worker first drains
//! its own queue, then steals from its siblings' opposite ends. No task is
//! ever created dynamically, so a worker may exit as soon as every queue
//! is empty — remaining work is already in flight on other workers.
//!
//! This module is also the workspace's single authority on thread-count
//! resolution ([`worker_threads`]); `worldsweep` and the bench harness
//! used to each carry their own `available_parallelism().map_or(…)` copy.

use crossbeam::deque::{Steal, Stealer, Worker};

/// Fallback worker count when the platform will not report its
/// parallelism.
pub const DEFAULT_THREADS: usize = 4;

/// Resolves a requested thread count: `0` means "use the machine's
/// available parallelism" (falling back to [`DEFAULT_THREADS`]); any other
/// value is taken as-is.
#[must_use]
pub fn worker_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(DEFAULT_THREADS, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Runs `f(task)` for every task on `threads` workers with work stealing.
/// Returns when all tasks have finished. `f` is responsible for its own
/// panic containment — a panic that escapes `f` poisons the whole pool.
///
/// # Panics
///
/// Panics if a worker thread itself panics (i.e. `f` let one escape).
pub fn run_stealing(tasks: &[usize], threads: usize, f: impl Fn(usize) + Sync) {
    if tasks.is_empty() {
        return;
    }
    let threads = threads.clamp(1, tasks.len());

    // Round-robin pre-distribution: deterministic and balanced.
    let queues: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    for (i, &task) in tasks.iter().enumerate() {
        queues[i % threads].push(task);
    }
    let stealers: Vec<Stealer<usize>> = queues.iter().map(Worker::stealer).collect();

    crossbeam::thread::scope(|scope| {
        for (id, own) in queues.iter().enumerate() {
            let stealers = &stealers;
            let f = &f;
            scope.spawn(move |_| loop {
                let task = own.pop().or_else(|| {
                    // Steal scan starting after ourselves, wrapping around.
                    (1..stealers.len()).find_map(|off| {
                        match stealers[(id + off) % stealers.len()].steal() {
                            Steal::Success(t) => Some(t),
                            Steal::Empty | Steal::Retry => None,
                        }
                    })
                });
                match task {
                    Some(t) => f(t),
                    None => break,
                }
            });
        }
    })
    .expect("runner worker panicked (job panic escaped its isolation wrapper)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_resolves_to_machine_parallelism() {
        assert!(worker_threads(0) >= 1);
        assert_eq!(worker_threads(3), 3);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let n = 97;
        let tasks: Vec<usize> = (0..n).collect();
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_stealing(&tasks, 5, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn uneven_tasks_get_stolen() {
        // One slow task pinned to worker 0's queue; the rest must still
        // complete via stealing even with 2 workers.
        let tasks: Vec<usize> = (0..20).collect();
        let done = AtomicUsize::new(0);
        run_stealing(&tasks, 2, |t| {
            if t == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        run_stealing(&[], 4, |_| panic!("must not run"));
    }
}
