//! Stable content hashing for job specs and artifacts.
//!
//! The digest must be identical across runs, processes and platforms —
//! `std::hash` explicitly is not — so we hash the canonical JSON rendering
//! of a spec with FNV-1a. JSON is canonical here because the workspace's
//! serializer emits struct fields in declaration order and `f64` values in
//! exact round-trip form, making the rendering a pure function of the
//! value.

use serde::Serialize;

/// A 64-bit stable content digest, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u64);

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for Digest {
    type Err = String;

    /// Parses the 16-lowercase-hex-digit rendering produced by `Display`
    /// (the form artifact filenames and URLs carry).
    fn from_str(s: &str) -> Result<Self, String> {
        if s.len() == 16 && s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
            u64::from_str_radix(s, 16).map(Digest).map_err(|e| e.to_string())
        } else {
            Err(format!("digest wants 16 lowercase hex digits, got '{s}'"))
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The stable digest of any serializable value: FNV-1a over its canonical
/// JSON rendering.
///
/// # Panics
///
/// Panics if the value cannot be serialized (job specs are plain data and
/// always can be).
#[must_use]
pub fn stable_digest<T: Serialize + ?Sized>(value: &T) -> Digest {
    let json = serde_json::to_string(value).expect("job specs serialize to JSON");
    Digest(fnv1a(json.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Spec {
        name: String,
        seed: u64,
        stride: f64,
    }

    #[test]
    fn digest_is_stable_across_calls() {
        let s = Spec { name: "Newark".into(), seed: 42, stride: 0.1 };
        assert_eq!(stable_digest(&s), stable_digest(&s));
    }

    #[test]
    fn digest_distinguishes_values() {
        let a = Spec { name: "Newark".into(), seed: 42, stride: 0.1 };
        let b = Spec { name: "Newark".into(), seed: 43, stride: 0.1 };
        assert_ne!(stable_digest(&a), stable_digest(&b));
    }

    #[test]
    fn digest_renders_as_16_hex_digits() {
        let d = stable_digest(&7u8);
        let hex = d.to_string();
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn digest_round_trips_through_its_string_form() {
        let d = stable_digest(&("Newark", 42u64));
        assert_eq!(d.to_string().parse::<Digest>().unwrap(), d);
        assert!("short".parse::<Digest>().is_err());
        assert!("XYZ4567890123456".parse::<Digest>().is_err());
        assert!("ABCDEF0123456789".parse::<Digest>().is_err(), "uppercase rejected");
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("a") reference value.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
