//! The job abstraction: a serializable, deterministic unit of work.

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::hash::Digest;

/// One deterministic unit of work (an annual run, a training campaign, one
/// sweep shard…).
///
/// The contract that makes resume and caching sound:
///
/// * `run` is a **pure function** of the spec — same spec, same output,
///   bit for bit (all simulation entropy comes from seeds inside the spec);
/// * `digest` covers **everything** that determines the output, and
///   nothing else (runtime-only payloads such as a pre-loaded model that is
///   itself a deterministic product of digested fields stay out);
/// * `kind` namespaces the artifact store, so two job types whose digests
///   collide can never serve each other's artifacts.
pub trait Job: Send + Sync {
    /// The artifact this job produces. Must survive a JSON round trip
    /// exactly (the store persists artifacts as JSON).
    type Output: Serialize + DeserializeOwned + Send + 'static;

    /// Artifact namespace, e.g. `"cooling-model"` or `"world-point"`.
    fn kind(&self) -> &'static str;

    /// Stable digest of the job's defining content (see [`crate::stable_digest`]).
    fn digest(&self) -> Digest;

    /// Short human label for status output and telemetry (e.g. the
    /// location name).
    fn label(&self) -> String;

    /// Executes the job. May panic: the executor isolates panics, records
    /// the job as failed and retries up to its attempt budget.
    fn run(&self) -> Self::Output;
}

/// How one job concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult<T> {
    /// Executed in this run.
    Computed(T),
    /// Served from the artifact store (warm cache or journal replay).
    Cached(T),
    /// Exhausted its attempt budget; carries the last panic message.
    Failed {
        /// Attempts consumed (= the executor's `max_attempts`).
        attempts: u32,
        /// Rendered panic payload of the final attempt.
        error: String,
    },
}

impl<T> JobResult<T> {
    /// The output, if the job succeeded either way.
    pub fn output(&self) -> Option<&T> {
        match self {
            JobResult::Computed(v) | JobResult::Cached(v) => Some(v),
            JobResult::Failed { .. } => None,
        }
    }

    /// Consumes the result into its output, if any.
    pub fn into_output(self) -> Option<T> {
        match self {
            JobResult::Computed(v) | JobResult::Cached(v) => Some(v),
            JobResult::Failed { .. } => None,
        }
    }

    /// Whether the output came from the store rather than execution.
    pub fn is_cached(&self) -> bool {
        matches!(self, JobResult::Cached(_))
    }

    /// Whether the job exhausted its attempts.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobResult::Failed { .. })
    }
}

/// Renders a `catch_unwind` payload as a message, the way the default
/// panic hook would.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_accessors() {
        let c: JobResult<u32> = JobResult::Computed(7);
        let k: JobResult<u32> = JobResult::Cached(9);
        let f: JobResult<u32> = JobResult::Failed { attempts: 2, error: "boom".into() };
        assert_eq!(c.output(), Some(&7));
        assert!(!c.is_cached() && !c.is_failed());
        assert!(k.is_cached());
        assert_eq!(k.into_output(), Some(9));
        assert!(f.is_failed());
        assert_eq!(f.output(), None);
    }

    #[test]
    fn panic_messages_render() {
        let static_payload =
            std::panic::catch_unwind(|| panic!("boom")).expect_err("panicked");
        assert_eq!(panic_message(static_payload.as_ref()), "boom");
        let formatted_payload =
            std::panic::catch_unwind(|| panic!("ow {}", 7)).expect_err("panicked");
        assert_eq!(panic_message(formatted_payload.as_ref()), "ow 7");
    }
}
