//! The append-only JSONL progress journal.
//!
//! Every job completion (success or exhausted failure) appends exactly one
//! line. A killed run leaves at worst one torn final line; replay stops at
//! the first malformed line, so everything before the kill is recovered
//! and the torn tail is simply re-run. Artifacts are written (atomically)
//! *before* the journal line, so a replayed `Done` entry always has its
//! artifact — and an artifact without a journal line is still found by the
//! executor's store probe.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Terminal status of a journaled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalStatus {
    /// The job produced its artifact.
    Done,
    /// The job exhausted its attempt budget.
    Failed,
}

/// One line of the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Artifact namespace (`Job::kind`).
    pub kind: String,
    /// Stable job digest, 16 hex digits.
    pub digest: String,
    /// Human label (`Job::label`).
    pub label: String,
    /// Terminal status.
    pub status: JournalStatus,
    /// Attempts consumed.
    pub attempts: u32,
}

/// An append-only journal writer plus the entries replayed at open time.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending and
    /// returns it together with the entries replayed from its existing
    /// content. Replay stops at the first malformed line (a torn write
    /// from a killed run).
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn open(path: &Path) -> std::io::Result<(Journal, Vec<JournalEntry>)> {
        let entries = match std::fs::read_to_string(path) {
            Ok(text) => replay(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let journal =
            Journal { path: path.to_path_buf(), writer: Mutex::new(BufWriter::new(file)) };
        Ok((journal, entries))
    }

    /// The journal's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry as a JSONL line and flushes it, so a kill loses
    /// at most the entry being written. Best-effort: journal I/O must
    /// never take the run down.
    pub fn append(&self, entry: &JournalEntry) {
        if let Ok(line) = serde_json::to_string(entry) {
            let mut w = self.writer.lock();
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

/// Parses journal text, stopping at the first malformed line.
#[must_use]
pub fn replay(text: &str) -> Vec<JournalEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalEntry>(line) {
            Ok(e) => entries.push(e),
            Err(_) => break,
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(digest: &str, status: JournalStatus) -> JournalEntry {
        JournalEntry {
            kind: "world-point".into(),
            digest: digest.into(),
            label: "cell".into(),
            status,
            attempts: 1,
        }
    }

    #[test]
    fn append_then_reopen_replays() {
        let dir = std::env::temp_dir().join("coolair_runner_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);

        let (j, replayed) = Journal::open(&path).unwrap();
        assert!(replayed.is_empty());
        j.append(&entry("aaaa", JournalStatus::Done));
        j.append(&entry("bbbb", JournalStatus::Failed));
        drop(j);

        let (_j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].digest, "aaaa");
        assert_eq!(replayed[1].status, JournalStatus::Failed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let good = serde_json::to_string(&entry("aaaa", JournalStatus::Done)).unwrap();
        let text = format!("{good}\n{{\"kind\":\"world-po");
        let entries = replay(&text);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].digest, "aaaa");
    }

    #[test]
    fn replay_skips_blank_lines() {
        let good = serde_json::to_string(&entry("cccc", JournalStatus::Done)).unwrap();
        let entries = replay(&format!("\n{good}\n\n"));
        assert_eq!(entries.len(), 1);
    }
}
