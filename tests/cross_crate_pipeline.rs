//! Integration tests spanning the weather → ML → thermal → CoolAir stack.

use coolair_suite::core::modeler::features::temp_features;
use coolair_suite::core::{train_cooling_model, CoolAir, CoolAirConfig, TrainingConfig, Version};
use coolair_suite::thermal::{
    server_power, CoolingRegime, Infrastructure, ModelKey, PodId, RegimeClass,
};
use coolair_suite::units::{Celsius, SimTime};
use coolair_suite::weather::{Forecaster, Location, TmySeries};
use coolair_suite::workload::facebook_trace;

/// The workload crate duplicates the server power constants to avoid a
/// dependency cycle; they must agree with the thermal crate's model.
#[test]
fn server_power_models_agree_across_crates() {
    use coolair_suite::workload::{Cluster, ClusterConfig};
    let cluster = Cluster::new(ClusterConfig::parasol());
    // All 64 servers active and idle.
    let total = cluster.total_power();
    let expected = server_power(0.0, false).value() * 64.0;
    assert!((total.value() - expected).abs() < 1e-9);
}

#[test]
fn training_pipeline_covers_all_steady_regimes() {
    let tmy = TmySeries::generate(&Location::santiago(), 21);
    let model = train_cooling_model(&tmy, &TrainingConfig::quick());
    for class in RegimeClass::ALL {
        assert!(
            model.models_for(ModelKey::Steady(class)).is_some(),
            "missing steady model for {class}"
        );
    }
    // Transitions exist for the common pairs the TKS drives.
    let common = ModelKey::Transition(RegimeClass::Closed, RegimeClass::FreeCooling);
    assert!(model.models_for(common).is_some());
}

#[test]
fn learned_model_monotone_in_outside_temperature() {
    let tmy = TmySeries::generate(&Location::newark(), 21);
    let model = train_cooling_model(&tmy, &TrainingConfig::quick());
    // At a fixed inside temperature and fan speed, colder outside air must
    // not predict a warmer next temperature.
    let key = ModelKey::Steady(RegimeClass::FreeCooling);
    let mut prev = f64::NEG_INFINITY;
    for out in [-5.0, 5.0, 15.0, 25.0] {
        let x = temp_features(26.0, 26.0, out, out, 0.5, 0.5, 0.3);
        let t = model.predict_temp(key, PodId(1), &x);
        assert!(
            t >= prev - 0.3,
            "prediction not monotone in outside temp: {t:.2} after {prev:.2} at {out}°C"
        );
        prev = t;
    }
}

#[test]
fn coolair_full_stack_day_newark() {
    // Build everything from scratch and run a control decision sequence.
    let location = Location::newark();
    let tmy = TmySeries::generate(&location, 11);
    let model = train_cooling_model(&tmy, &TrainingConfig::quick());
    let mut coolair = CoolAir::new(
        Version::AllNd,
        CoolAirConfig::default(),
        model,
        Forecaster::perfect(tmy),
        Infrastructure::Smooth,
    );

    // Compute sizing responds to the workload's demand profile.
    let trace = facebook_trace(3);
    let (t0, _) = coolair.decide_compute(0, 8);
    assert_eq!(t0, 0);
    let (t1, order) = coolair.decide_compute(40, 8);
    assert_eq!(t1, 40);
    assert_eq!(order.len(), 64);
    // Hold-down: a transient dip keeps servers awake.
    let (t2, _) = coolair.decide_compute(5, 8);
    assert_eq!(t2, 40, "demand hold-down should retain the recent peak");

    // Band exists after the first cooling decision.
    let now = SimTime::from_days(100);
    coolair.ensure_band(now);
    let band = coolair.band().expect("band selected");
    assert!(band.hi() <= Celsius::new(30.0));
    assert!(band.lo() >= Celsius::new(10.0));
    assert!(band.width().degrees() <= 5.0 + 1e-9);

    // Jobs are never scheduled past their deadline.
    for job in trace.with_deadlines(coolair_suite::units::SimDuration::from_hours(6)).jobs().iter().take(50) {
        let mut j = job.clone();
        j.submit = now + coolair_suite::units::SimDuration::from_secs(j.submit.as_secs());
        let start = coolair.schedule_job(&j, now);
        assert!(start >= j.submit);
        assert!(start <= j.latest_start().unwrap());
    }
}

#[test]
fn regime_sanitization_respected_by_decisions() {
    let location = Location::iceland();
    let tmy = TmySeries::generate(&location, 11);
    let model = train_cooling_model(&tmy, &TrainingConfig::quick());
    for infra in [Infrastructure::Parasol, Infrastructure::Smooth] {
        let mut coolair = CoolAir::new(
            Version::AllNd,
            CoolAirConfig::default(),
            model.clone(),
            Forecaster::perfect(tmy.clone()),
            infra,
        );
        let plant = coolair_suite::thermal::Plant::new(
            coolair_suite::thermal::PlantConfig::parasol(),
        );
        let readings = plant.readings(SimTime::from_days(50));
        let d = coolair.decide_cooling(&readings, SimTime::from_days(50)).unwrap();
        assert_eq!(d.regime, infra.sanitize(d.regime), "{infra:?} regime not realisable");
        if let CoolingRegime::FreeCooling { fan } = d.regime {
            assert!(fan >= infra.min_fan());
        }
    }
}
