//! Properties of the fleet campus layer: an N=1 fleet is bit-identical to
//! the single-container annual path, migration conserves deferrable load,
//! a killed campaign resumes byte-identically from a half-populated store,
//! and the headline acceptance claim — on the shipped four-climate fleet,
//! follow-the-cold strictly improves fleet PUE over the same containers
//! run independently.

use std::path::{Path, PathBuf};

use coolair_suite::fleet::{run_fleet_with, FleetOutcome, FleetSpec, KIND_FLEET_EVAL};
use coolair_suite::runner::{Executor, ExecutorConfig, Telemetry};
use coolair_suite::sim::run_annual;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coolair_fleet_props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_in_store(spec: &FleetSpec, dir: &Path, resume: bool) -> (FleetOutcome, Telemetry) {
    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: 4,
        store_dir: Some(dir.to_path_buf()),
        resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .expect("open store");
    (run_fleet_with(spec, &exec, &telemetry), telemetry)
}

fn outcome_json(outcome: &FleetOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

/// A one-container fleet with migration off runs the exact `run_annual`
/// code path: same sampled days, same trained model, same plant stepping.
/// The totals must match bit for bit, not approximately.
#[test]
fn single_container_fleet_is_bit_identical_to_run_annual() {
    let mut spec = FleetSpec::smoke(3);
    spec.containers = 1;
    spec.loaded_fraction = 1.0;
    spec.sites.truncate(1);
    spec.migration.enabled = false;

    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(2, telemetry.clone());
    let outcome = run_fleet_with(&spec, &exec, &telemetry);
    assert_eq!(outcome.epochs_run, 1, "migration off collapses to one epoch");

    let summary = run_annual(&spec.system, &spec.sites[0], spec.trace, &spec.annual);
    assert_eq!(outcome.fleet.violation_cmin, summary.total_violation());
    assert_eq!(outcome.fleet.cooling_kwh, summary.cooling_kwh());
    assert_eq!(outcome.fleet.it_kwh, summary.it_kwh());
    assert_eq!(outcome.fleet.jobs_completed, summary.jobs_completed());
    assert_eq!(outcome.fleet.pue, summary.pue());
    assert_eq!(
        outcome.fleet, outcome.independent,
        "with no migration the managed fleet IS the independent fleet"
    );
}

/// Migration moves deferrable load between sites; it never creates or
/// destroys it, and it never overspends the per-epoch budget.
#[test]
fn migration_conserves_deferrable_load_within_budget() {
    let spec = FleetSpec::shipped(7);
    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(4, telemetry.clone());
    let outcome = run_fleet_with(&spec, &exec, &telemetry);

    let loaded_total = spec.loaded_total() as u64;
    assert!(loaded_total > 0, "the shipped fleet carries batch load");
    for epoch in &outcome.epochs {
        assert_eq!(
            epoch.loaded_per_site.iter().sum::<u64>(),
            loaded_total,
            "epoch {}: migration must conserve the loaded-container count",
            epoch.epoch
        );
        assert!(
            epoch.migrated_mwh <= spec.migration.budget_mwh + 1e-9,
            "epoch {}: migrated {} MWh overspends the {} MWh budget",
            epoch.epoch,
            epoch.migrated_mwh,
            spec.migration.budget_mwh
        );
        assert!(
            epoch.migrated_mwh <= epoch.deferrable_mwh + 1e-9,
            "epoch {}: cannot migrate more load than the fleet carries",
            epoch.epoch
        );
        // The audit trail prices every move consistently.
        let recorded: u64 = epoch.migrations.iter().map(|m| m.containers).sum();
        let priced: f64 = epoch.migrations.iter().map(|m| m.mwh).sum();
        assert!((priced - epoch.migrated_mwh).abs() < 1e-9);
        if epoch.epoch == 0 {
            assert_eq!(recorded, 0, "epoch 0 is the initial placement, no moves yet");
        }
    }
    let total: f64 = outcome.epochs.iter().map(|e| e.migrated_mwh).sum();
    assert!((total - outcome.fleet.migrated_mwh).abs() < 1e-9);
}

/// A killed campaign resumed against the same store reproduces the outcome
/// byte for byte. The kill is simulated by copying only a prefix of the
/// first run's lane evaluations into a second store — what a mid-run
/// SIGKILL leaves behind.
#[test]
fn partial_store_resume_is_byte_identical() {
    let full_dir = fresh_dir("resume-full");
    let spec = FleetSpec::smoke(5);
    let (full, _) = run_in_store(&spec, &full_dir, false);

    let partial_dir = fresh_dir("resume-partial");
    let src = full_dir.join("artifacts").join(KIND_FLEET_EVAL);
    let dst = partial_dir.join("artifacts").join(KIND_FLEET_EVAL);
    std::fs::create_dir_all(&dst).expect("mkdir partial store");
    let mut names: Vec<String> = std::fs::read_dir(&src)
        .expect("read full store")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .collect();
    names.sort();
    assert!(names.len() >= 4, "a smoke campaign should persist several lane evals");
    for name in names.iter().take(names.len() / 2) {
        std::fs::copy(src.join(name), dst.join(name)).expect("copy artifact");
    }

    let (resumed, telemetry) = run_in_store(&spec, &partial_dir, true);
    assert_eq!(
        outcome_json(&full),
        outcome_json(&resumed),
        "resume from a half-populated store must reproduce the outcome byte for byte"
    );
    assert!(
        telemetry.metrics().counter("runner.cache-hit") > 0,
        "the surviving lane evaluations must actually be served from the store"
    );
}

/// The acceptance claim on the shipped fleet (64 containers over subpolar,
/// temperate, desert, and tropical sites): following the cold strictly
/// improves fleet PUE — or failing that, thermal violation — over the same
/// containers frozen at their initial placement, and the batched lane path
/// prices the whole year in far fewer evaluations than containers × epochs.
#[test]
fn shipped_fleet_follow_the_cold_beats_independent_containers() {
    let spec = FleetSpec::shipped(7);
    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(4, telemetry.clone());
    let outcome = run_fleet_with(&spec, &exec, &telemetry);

    assert!(outcome.fleet.moves > 0, "the shipped fleet must actually migrate");
    assert!(
        outcome.fleet.pue < outcome.independent.pue
            || outcome.fleet.violation_cmin < outcome.independent.violation_cmin,
        "follow-the-cold must strictly improve PUE ({} vs {}) or violation ({} vs {})",
        outcome.fleet.pue,
        outcome.independent.pue,
        outcome.fleet.violation_cmin,
        outcome.independent.violation_cmin
    );
    // IT work is preserved: migration relocates batch load, it does not
    // shed it.
    assert_eq!(outcome.fleet.jobs_completed, outcome.independent.jobs_completed);
    // The batching win: 64 containers × 4 epochs = 256 container-epochs,
    // priced by at most sites × classes × (epochs + the baseline year).
    let cap = (spec.sites.len() * 2 * (spec.epochs + 1)) as u64;
    assert!(
        outcome.lanes_evaluated <= cap,
        "{} lanes for {} container-epochs (cap {})",
        outcome.lanes_evaluated,
        outcome.containers * outcome.epochs_run,
        cap
    );
}
