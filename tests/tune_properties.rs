//! Properties of the robust tuner: determinism under a fixed seed,
//! bit-identical kill/resume through the artifact store, memo accounting,
//! and the headline acceptance claim — on the shipped scenario suite the
//! tuned robust design strictly improves worst-case violation over the
//! paper-nominal design within the +5 % worst-case energy budget.

use std::path::{Path, PathBuf};

use coolair_suite::runner::{Executor, ExecutorConfig, Telemetry};
use coolair_suite::tune::{run_tune_with, TuneOutcome, TuneSpec, KIND_TUNE_EVAL};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coolair_tune_props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_in_store(spec: &TuneSpec, dir: &Path, resume: bool) -> (TuneOutcome, Telemetry) {
    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: 4,
        store_dir: Some(dir.to_path_buf()),
        resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .expect("open store");
    (run_tune_with(spec, &exec, &telemetry), telemetry)
}

fn outcome_json(outcome: &TuneOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

#[test]
fn smoke_tune_is_deterministic_and_counts_memo_traffic() {
    let spec = TuneSpec::smoke(3);
    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(2, telemetry.clone());
    let a = run_tune_with(&spec, &exec, &telemetry);
    let b = run_tune_with(&spec, &exec, &telemetry);
    assert_eq!(
        outcome_json(&a),
        outcome_json(&b),
        "same spec, same executor → byte-identical outcome"
    );
    assert!(a.memo_hits > 0, "the incumbent is re-scored every round");
    assert!(a.memo_misses > 0, "fresh proposals must be evaluated");
    assert!(
        telemetry.metrics().counter("tune.memo.hit") >= a.memo_hits,
        "memo hits must surface on the metrics registry"
    );
    assert!(telemetry.metrics().counter("tune.memo.miss") >= a.memo_misses);
    assert_eq!(a.spec_digest, spec.digest().to_string());
    assert!(!a.rounds.is_empty());
    assert_eq!(a.table.len(), spec.suite().len());
}

#[test]
fn different_seeds_may_search_differently_but_stay_valid() {
    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(2, telemetry.clone());
    for seed in [1, 9] {
        let out = run_tune_with(&TuneSpec::smoke(seed), &exec, &telemetry);
        assert!(out.robust.validate().is_ok(), "tuned design must validate");
        assert!(
            out.robust_worst_energy
                <= (1.0 + 0.05) * out.nominal_worst_energy + 1e-6,
            "energy cap must hold on the suite: robust {} vs nominal {}",
            out.robust_worst_energy,
            out.nominal_worst_energy
        );
    }
}

/// A killed tune resumed against the same artifact store reproduces the
/// incumbent and scenario pool bit for bit. The kill is simulated by
/// copying only a prefix of the first run's evaluation artifacts into a
/// second store — exactly what a mid-run SIGKILL leaves behind.
#[test]
fn partial_store_resume_is_bit_identical() {
    let full_dir = fresh_dir("resume-full");
    let spec = TuneSpec::smoke(5);
    let (full, _) = run_in_store(&spec, &full_dir, false);

    let partial_dir = fresh_dir("resume-partial");
    let src = full_dir.join("artifacts").join(KIND_TUNE_EVAL);
    let dst = partial_dir.join("artifacts").join(KIND_TUNE_EVAL);
    std::fs::create_dir_all(&dst).expect("mkdir partial store");
    let mut names: Vec<String> = std::fs::read_dir(&src)
        .expect("read full store")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .collect();
    names.sort();
    assert!(names.len() >= 4, "smoke tune should persist several evals");
    for name in names.iter().take(names.len() / 2) {
        std::fs::copy(src.join(name), dst.join(name)).expect("copy artifact");
    }

    let (resumed, telemetry) = run_in_store(&spec, &partial_dir, true);
    assert_eq!(
        outcome_json(&full),
        outcome_json(&resumed),
        "resume from a half-populated store must reproduce the outcome bit for bit"
    );
    assert!(
        telemetry.metrics().counter("runner.cache-hit") > 0,
        "the surviving artifacts must actually be served from the store"
    );
}

/// The acceptance claim on the shipped suite (3 climates × 3 fault
/// severities × 2 workload shapes): the tuned robust design's worst-case
/// violation strictly improves on the paper-nominal configuration while
/// spending at most 5 % more worst-case total energy.
#[test]
fn shipped_suite_robust_design_dominates_nominal_worst_case() {
    let dir = fresh_dir("shipped");
    let spec = TuneSpec::shipped(7);
    assert_eq!(spec.candidates.len(), 18, "3 climates × 3 severities × 2 traces");
    let (out, _) = run_in_store(&spec, &dir, false);
    assert!(
        out.robust_worst_violation < out.nominal_worst_violation,
        "robust worst-case violation {} must strictly beat nominal {}",
        out.robust_worst_violation,
        out.nominal_worst_violation
    );
    assert!(
        out.robust_worst_energy <= (1.0 + spec.energy_slack) * out.nominal_worst_energy + 1e-6,
        "robust worst-case energy {} must stay within +5% of nominal {}",
        out.robust_worst_energy,
        out.nominal_worst_energy
    );
    assert!(out.pool.len() >= spec.initial.len(), "pool only grows");
    assert_eq!(out.table.len(), 21, "table covers the full suite");
}
