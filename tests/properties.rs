//! Property-based tests on the core invariants (proptest).

use coolair_suite::core::manager::band::{select_band, TempBand};
use coolair_suite::core::compute::{schedule_start, server_priority, Placement, TemporalPolicy};
use coolair_suite::core::CoolAirConfig;
use coolair_suite::ml::{Dataset, LinearModel, Regressor};
use coolair_suite::thermal::{
    cooling_power, CoolingRegime, Infrastructure, ItLoad, OutsideConditions, Plant, PlantConfig,
    PodId,
};
use coolair_suite::units::{
    psychro, AbsoluteHumidity, Celsius, FanSpeed, RelativeHumidity, SimDuration, SimTime, Watts,
};
use coolair_suite::weather::DailyForecast;
use coolair_suite::workload::{Job, JobId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn psychro_round_trip(t in -30.0..45.0f64, rh in 1.0..99.0f64) {
        let temp = Celsius::new(t);
        let w = psychro::absolute_humidity(temp, RelativeHumidity::new(rh));
        let back = psychro::relative_humidity(temp, w);
        prop_assert!((back.percent() - rh).abs() < 1e-6);
    }

    #[test]
    fn dew_point_never_exceeds_temperature(t in -20.0..45.0f64, rh in 1.0..100.0f64) {
        let temp = Celsius::new(t);
        let w = psychro::absolute_humidity(temp, RelativeHumidity::new(rh));
        prop_assert!(psychro::dew_point(w).value() <= t + 0.05);
    }

    #[test]
    fn fan_power_monotone(a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = cooling_power(
            CoolingRegime::free_cooling(FanSpeed::saturating(lo)),
            Infrastructure::Parasol,
        );
        let p_hi = cooling_power(
            CoolingRegime::free_cooling(FanSpeed::saturating(hi)),
            Infrastructure::Parasol,
        );
        prop_assert!(p_lo <= p_hi);
    }

    #[test]
    fn sanitize_is_idempotent(fan in 0.0..1.0f64, comp in 0.0..1.0f64, pick in 0..3usize) {
        let regime = match pick {
            0 => CoolingRegime::Closed,
            1 => CoolingRegime::free_cooling(FanSpeed::saturating(fan)),
            _ => CoolingRegime::Ac { compressor: comp },
        };
        for infra in [Infrastructure::Parasol, Infrastructure::Smooth] {
            let once = infra.sanitize(regime);
            prop_assert_eq!(infra.sanitize(once), once);
        }
    }

    #[test]
    fn band_selection_invariants(mean in -40.0..45.0f64) {
        let cfg = CoolAirConfig::default();
        let forecast = DailyForecast {
            day: 0,
            hourly: (0..24).map(|_| Celsius::new(mean)).collect(),
        };
        let (band, _slid) = select_band(&forecast, &cfg);
        prop_assert!(band.lo() >= cfg.min_temp);
        prop_assert!(band.hi() <= cfg.max_temp);
        prop_assert!(band.width().degrees() <= cfg.width.degrees() + 1e-9);
        prop_assert!(band.width().degrees() >= 0.0);
    }

    #[test]
    fn placement_is_permutation(ranking in proptest::sample::subsequence(vec![0usize,1,2,3], 4)) {
        prop_assume!(ranking.len() == 4);
        let pods: Vec<PodId> = ranking.iter().map(|&i| PodId(i)).collect();
        for placement in [Placement::HighRecircFirst, Placement::LowRecircFirst] {
            let order = server_priority(placement, &pods, 16);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn temporal_scheduling_never_violates_deadlines(
        submit_h in 0u64..23,
        deadline_h in 1u64..24,
        policy in 0..3usize,
        temps in proptest::collection::vec(-10.0..40.0f64, 24),
    ) {
        let policy = match policy {
            0 => TemporalPolicy::None,
            1 => TemporalPolicy::BandAware,
            _ => TemporalPolicy::CoolestHours,
        };
        let job = Job {
            id: JobId(1),
            submit: SimTime::from_secs(submit_h * 3600 + 120),
            map_tasks: 4,
            reduce_tasks: 1,
            map_work: 100.0,
            reduce_work: 10.0,
            start_deadline: Some(SimDuration::from_hours(deadline_h)),
        };
        let forecast = DailyForecast {
            day: 0,
            hourly: temps.into_iter().map(Celsius::new).collect(),
        };
        let band = TempBand::new(Celsius::new(20.0), Celsius::new(25.0));
        let start = schedule_start(
            policy,
            &job,
            Some((band, false)),
            &forecast,
            coolair_suite::units::TempDelta::new(8.0),
        );
        prop_assert!(start >= job.submit);
        prop_assert!(start <= job.latest_start().unwrap());
    }

    #[test]
    fn plant_stays_bounded_under_arbitrary_control(
        seq in proptest::collection::vec((0..4usize, 0.0..1.0f64), 1..40),
        outside_t in -35.0..48.0f64,
        load in 0.0..1.0f64,
    ) {
        let mut plant = Plant::new(PlantConfig::parasol());
        let out = OutsideConditions {
            temperature: Celsius::new(outside_t),
            abs_humidity: psychro::absolute_humidity(
                Celsius::new(outside_t),
                RelativeHumidity::new(70.0),
            ),
        };
        let it = ItLoad::uniform(4, Watts::new(load * 480.0), load);
        for (kind, x) in seq {
            let regime = match kind {
                0 => CoolingRegime::Closed,
                1 => CoolingRegime::free_cooling(FanSpeed::saturating(x.max(0.01))),
                2 => CoolingRegime::ac_fan_only(),
                _ => CoolingRegime::Ac { compressor: x },
            };
            for _ in 0..40 {
                plant.step(SimDuration::from_secs(15), out, &it, regime);
            }
            let r = plant.readings(SimTime::EPOCH);
            for t in &r.pod_inlets {
                prop_assert!(t.is_finite());
                prop_assert!(t.value() > -60.0 && t.value() < 120.0);
            }
            prop_assert!(r.cold_aisle_rh.percent() <= 100.0);
            prop_assert!(r.cold_aisle_abs >= AbsoluteHumidity::ZERO);
        }
    }

    #[test]
    fn ols_residuals_orthogonal_to_fit(
        coeffs in proptest::collection::vec(-3.0..3.0f64, 2),
        intercept in -10.0..10.0f64,
    ) {
        // OLS on exactly-linear data recovers predictions exactly.
        let mut data = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..40 {
            let a = f64::from(i) * 0.37;
            let b = f64::from((i * 13) % 7);
            let y = intercept + coeffs[0] * a + coeffs[1] * b;
            data.push(vec![a, b], y).unwrap();
        }
        let m = LinearModel::fit_ols(&data).unwrap();
        for (x, y) in data.iter() {
            prop_assert!((m.predict(x) - y).abs() < 1e-6);
        }
    }
}
