//! Properties of the telemetry layer: attaching a bus must never change
//! what the control loop does (zero observer effect), and the event stream
//! itself must be a deterministic function of the run's seeds.

use coolair_suite::core::Version;
use coolair_suite::sim::{
    run_annual_traced, run_annual_with_model, train_for_location, AnnualConfig, FaultPlan,
    FaultRates, SystemSpec,
};
use coolair_suite::telemetry::{Event, Telemetry};
use coolair_suite::weather::Location;
use coolair_suite::workload::TraceKind;

/// Three days across the seasons with a seeded fault plan: enough closed-
/// loop dynamics (regime changes, supervisor activity, fault windows) to
/// detect divergence, cheap enough to run several times per test.
fn faulted_cfg() -> AnnualConfig {
    let mut cfg = AnnualConfig::quick();
    cfg.stride = 120;
    cfg.faults = FaultPlan::random(77, &FaultRates::scaled(2.0), &cfg.sampled_days(), 4);
    cfg
}

/// Telemetry must be write-only from the loop's point of view: a run with
/// a live memory sink and a run with telemetry disabled must produce
/// bit-identical `AnnualSummary` output.
#[test]
fn zero_observer_effect_on_annual_summary() {
    let cfg = faulted_cfg();
    let location = Location::newark();
    let model = train_for_location(&location, &cfg);
    let sys = SystemSpec::Supervised(Version::AllNd);

    let silent =
        run_annual_with_model(&sys, &location, TraceKind::Facebook, &cfg, Some(model.clone()));
    let bus = Telemetry::memory();
    let observed =
        run_annual_traced(&sys, &location, TraceKind::Facebook, &cfg, Some(model), bus.clone());

    assert_eq!(silent, observed, "attaching telemetry changed the simulation outcome");

    // And the observation itself must not be trivial: the traced run saw
    // the control loop at work.
    let events = bus.take_events();
    let ticks = events.iter().filter(|e| matches!(e, Event::ControlTick { .. })).count();
    let regimes = events.iter().filter(|e| matches!(e, Event::RegimeChange { .. })).count();
    assert!(ticks >= 1, "traced run must record at least one control tick");
    assert!(regimes >= 1, "traced run must record at least one regime change");
}

/// Under fixed seeds the event stream is itself deterministic: two
/// identical runs yield identical event vectors (wall-clock profile data
/// is intentionally excluded from this guarantee).
#[test]
fn event_stream_is_deterministic_under_fixed_seed() {
    let cfg = faulted_cfg();
    let location = Location::newark();
    let model = train_for_location(&location, &cfg);
    let sys = SystemSpec::Supervised(Version::AllNd);

    let run = |model| {
        let bus = Telemetry::memory();
        let summary = run_annual_traced(
            &sys,
            &location,
            TraceKind::Facebook,
            &cfg,
            Some(model),
            bus.clone(),
        );
        (summary, bus.take_events(), bus.metrics())
    };
    let (sum_a, events_a, metrics_a) = run(model.clone());
    let (sum_b, events_b, metrics_b) = run(model);

    assert_eq!(sum_a, sum_b);
    assert_eq!(events_a.len(), events_b.len(), "event counts diverged between identical runs");
    for (i, (a, b)) in events_a.iter().zip(events_b.iter()).enumerate() {
        assert_eq!(a, b, "event {i} diverged between identical runs");
    }
    assert_eq!(
        metrics_a.counters, metrics_b.counters,
        "metric counters diverged between identical runs"
    );
}

/// A disabled handle is inert end to end: no events are retained and the
/// registry stays empty, so the disabled path cannot leak state (or cost)
/// between runs.
#[test]
fn disabled_telemetry_records_nothing() {
    let cfg = AnnualConfig::quick();
    let location = Location::newark();
    let bus = Telemetry::disabled();
    let summary = run_annual_traced(
        &SystemSpec::Baseline,
        &location,
        TraceKind::Facebook,
        &cfg,
        None,
        bus.clone(),
    );
    assert!(!bus.enabled());
    assert!(bus.take_events().is_empty());
    assert!(bus.metrics().counters.is_empty());
    assert!(summary.it_kwh() > 0.0, "the run itself must still simulate");
}
