//! Properties of the experiment orchestration subsystem: a killed sweep
//! resumed from its journal must be bit-identical to an uninterrupted
//! run, a warm artifact store must serve a repeat sweep without executing
//! anything, and a panicking job must never take a batch down.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use coolair_suite::runner::{
    replay, stable_digest, Digest, Executor, ExecutorConfig, Job, JobResult, ProgressSnapshot,
};
use coolair_suite::sim::jobs::KIND_COOLING_MODEL;
use coolair_suite::sim::{sweep_locations, AnnualConfig, SweepReport};
use coolair_suite::telemetry::Telemetry;
use coolair_suite::weather::Location;
use proptest::prelude::*;

/// The test sweep: two climate-distinct locations, four sampled days,
/// quick training — 4 jobs total (2 train + 2 evaluate), cheap enough to
/// run several times per property.
fn sweep_inputs() -> (Vec<Location>, AnnualConfig) {
    let annual = AnnualConfig { stride: 120, ..AnnualConfig::quick() };
    (vec![Location::newark(), Location::chad()], annual)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coolair_runner_props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the test sweep against `dir`, returning the report, the
/// executor's progress, and how many training jobs actually executed.
fn run_sweep(dir: &Path, resume: bool) -> (SweepReport, ProgressSnapshot, u64) {
    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: 2,
        store_dir: Some(dir.to_path_buf()),
        resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .expect("open store");
    let (locations, annual) = sweep_inputs();
    let report = sweep_locations(&locations, &annual, &exec);
    let trained = telemetry.metrics().counter(&format!("runner.run.{KIND_COOLING_MODEL}"));
    (report, exec.progress(), trained)
}

fn points_json(report: &SweepReport) -> String {
    assert!(report.failures.is_empty(), "sweep failed: {:?}", report.failures);
    serde_json::to_string(&report.points).expect("serialise points")
}

/// Truncates the journal to its first `keep` lines and deletes every
/// artifact the kept prefix does not reference — the state after a kill
/// at an arbitrary point (the journal line is written after its
/// artifact, so a torn run can also leave *extra* artifacts; deleting
/// them exercises the harder recovery, recomputation).
fn kill_at(dir: &Path, keep: usize) -> usize {
    let journal = dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    let keep = keep.min(lines.len());
    let mut kept = lines[..keep].join("\n");
    if keep > 0 {
        kept.push('\n');
    }
    std::fs::write(&journal, kept.as_bytes()).expect("truncate journal");

    let referenced: HashSet<(String, String)> = replay(&kept)
        .into_iter()
        .map(|e| (e.kind, e.digest))
        .collect();
    for kind_dir in std::fs::read_dir(dir.join("artifacts")).expect("artifacts dir") {
        let kind_dir = kind_dir.unwrap().path();
        let kind = kind_dir.file_name().unwrap().to_str().unwrap().to_string();
        for artifact in std::fs::read_dir(&kind_dir).unwrap() {
            let path = artifact.unwrap().path();
            let digest = path.file_stem().unwrap().to_str().unwrap().to_string();
            if !referenced.contains(&(kind.clone(), digest)) {
                std::fs::remove_file(&path).unwrap();
            }
        }
    }
    keep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Kill a sweep after an arbitrary number of completed jobs; the
    /// resumed run must produce byte-identical points to an
    /// uninterrupted fresh run.
    #[test]
    fn resume_after_random_kill_is_bit_identical(keep in 0usize..5) {
        let reference_dir = fresh_dir(&format!("reference_{keep}"));
        let (reference, _, _) = run_sweep(&reference_dir, false);
        let reference = points_json(&reference);

        let dir = fresh_dir(&format!("killed_{keep}"));
        let (_, progress, _) = run_sweep(&dir, false);
        let total = progress.done;
        let kept = kill_at(&dir, keep);

        let (resumed, progress, _) = run_sweep(&dir, true);
        prop_assert_eq!(points_json(&resumed), reference.clone());
        prop_assert_eq!(progress.resumed, kept as u64);
        prop_assert_eq!(progress.done, total - kept as u64);
    }
}

/// A second sweep over a warm store must serve every point from the
/// artifact cache: identical output, zero jobs executed, zero training —
/// verified through the telemetry counters, as the acceptance criteria
/// demand.
#[test]
fn warm_store_reruns_identically_with_zero_training() {
    let dir = fresh_dir("warm");
    let (cold, cold_progress, cold_trained) = run_sweep(&dir, false);
    assert_eq!(cold_trained, 2, "cold run trains both locations");
    assert_eq!(cold_progress.done, 4);

    let (warm, warm_progress, warm_trained) = run_sweep(&dir, false);
    assert_eq!(points_json(&warm), points_json(&cold));
    assert_eq!(warm_trained, 0, "warm run must not execute any training job");
    assert_eq!(warm_progress.scheduled, 0);
    assert_eq!(warm_progress.cache_hits, 4);
    assert!((warm_progress.cache_hit_rate() - 1.0).abs() < 1e-12);
}

/// A job that panics on every attempt for flagged inputs.
struct Brittle {
    input: u64,
    broken: bool,
}

impl Job for Brittle {
    type Output = u64;
    fn kind(&self) -> &'static str {
        "brittle"
    }
    fn digest(&self) -> Digest {
        stable_digest(&self.input)
    }
    fn label(&self) -> String {
        self.input.to_string()
    }
    fn run(&self) -> u64 {
        assert!(!self.broken, "shard {} is broken", self.input);
        self.input + 1
    }
}

/// One panicking job in a batch is retried, recorded failed, and does not
/// disturb its neighbours — in particular their input-order slots.
#[test]
fn panicking_job_is_isolated_and_retried() {
    let exec = Executor::in_memory(3, Telemetry::discard());
    let batch: Vec<Brittle> =
        (0..12).map(|input| Brittle { input, broken: input == 7 }).collect();
    let out = exec.run(&batch);

    for (i, result) in out.iter().enumerate() {
        if i == 7 {
            match result {
                JobResult::Failed { attempts, error } => {
                    assert_eq!(*attempts, 2, "default budget is two attempts");
                    assert!(error.contains("shard 7 is broken"), "got: {error}");
                }
                other => panic!("job 7 should fail, got {other:?}"),
            }
        } else {
            assert_eq!(result.output(), Some(&(i as u64 + 1)));
        }
    }
    let progress = exec.progress();
    assert_eq!((progress.done, progress.failed, progress.retries), (11, 1, 1));
}
