//! Properties of the fault-injection layer and the degraded-mode
//! supervisor: determinism under a fixed seed, supervisor transparency at
//! zero faults, and the hard-failsafe temperature bound under total sensor
//! dropout.

use coolair_suite::core::Version;
use coolair_suite::sim::{
    run_annual, run_annual_with_model, train_for_location, ActuatorFault, AnnualConfig, FaultKind,
    FaultPlan, FaultRates, FaultSpec, FaultWindow, SensorFault, SimConfig, SystemSpec,
};
use coolair_suite::units::SimTime;
use coolair_suite::weather::Location;
use coolair_suite::workload::TraceKind;
use proptest::prelude::*;

fn quick_cfg() -> AnnualConfig {
    // Three days (0, 120, 240) across the seasons: enough closed-loop
    // dynamics to detect divergence, cheap enough to run twice per test.
    let mut cfg = AnnualConfig::quick();
    cfg.stride = 120;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same seed always yields the same fault schedule, and the
    /// schedule for a day does not depend on which other days are listed.
    #[test]
    fn fault_schedule_is_deterministic(seed in 0u64..1_000_000, severity in 0.1f64..4.0) {
        let days: Vec<u64> = (0..365).step_by(7).collect();
        let rates = FaultRates::scaled(severity);
        let a = FaultPlan::random(seed, &rates, &days, 4);
        let b = FaultPlan::random(seed, &rates, &days, 4);
        prop_assert_eq!(&a, &b);

        // Restricting the day list keeps the surviving days' windows.
        let subset: Vec<u64> = days.iter().copied().filter(|d| *d >= 100).collect();
        let c = FaultPlan::random(seed, &rates, &subset, 4);
        let from_a: Vec<&FaultWindow> = a
            .windows()
            .iter()
            .filter(|w| w.start.day_index() >= 100)
            .collect();
        let from_c: Vec<&FaultWindow> = c.windows().iter().collect();
        prop_assert_eq!(from_a, from_c);

        // A different seed almost surely schedules differently (at these
        // severities a year contains dozens of windows).
        let d = FaultPlan::random(seed ^ 0xdead_beef, &rates, &days, 4);
        prop_assert!(a != d, "distinct seeds produced identical plans");
    }

    /// A [`FaultSpec`] survives serde unchanged (including hand-built extra
    /// windows), and scheduling from the round-tripped spec reproduces the
    /// exact plan — the `spec → schedule → spec` property that makes a
    /// scenario a content-addressable artifact rather than seed-plus-folklore.
    #[test]
    fn fault_spec_round_trips_through_serde_and_scheduling(
        seed in 0u64..1_000_000,
        severity in 0.0f64..4.0,
        extra_day in 0u64..364,
        extra_hours in 1u64..24,
        pod in 0usize..4,
    ) {
        let spec = FaultSpec {
            seed,
            severity,
            extra: vec![
                FaultWindow {
                    start: SimTime::from_days(extra_day),
                    end: SimTime::from_secs(extra_day * 86_400 + extra_hours * 3_600),
                    kind: FaultKind::Sensor { pod, fault: SensorFault::Drift { c_per_hour: 0.5 } },
                },
                FaultWindow {
                    start: SimTime::from_days(extra_day),
                    end: SimTime::from_secs(extra_day * 86_400 + extra_hours * 3_600),
                    kind: FaultKind::Actuator(ActuatorFault::AcLockout),
                },
            ],
        };
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: FaultSpec = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &spec);

        // Identical specs materialise identical plans, with the extra
        // windows appended after the generated background load.
        let days: Vec<u64> = (0..365).step_by(30).collect();
        let plan = spec.schedule(&days, 4);
        prop_assert_eq!(&plan, &back.schedule(&days, 4));
        let tail: Vec<&FaultWindow> =
            plan.windows().iter().rev().take(2).rev().collect();
        prop_assert_eq!(tail, spec.extra.iter().collect::<Vec<_>>());
    }
}

#[test]
fn faulted_annual_run_is_deterministic() {
    let mut cfg = quick_cfg();
    cfg.faults = FaultPlan::random(77, &FaultRates::scaled(2.0), &cfg.sampled_days(), 4);
    let location = Location::newark();
    let model = train_for_location(&location, &cfg);
    let sys = SystemSpec::Supervised(Version::AllNd);
    let a = run_annual_with_model(&sys, &location, TraceKind::Facebook, &cfg, Some(model.clone()));
    let b = run_annual_with_model(&sys, &location, TraceKind::Facebook, &cfg, Some(model));
    assert_eq!(a, b, "same seed, same fault plan => identical annual summary");
    assert!(a.fault_minutes() > 0, "severity 2.0 must actually inject faults");
}

#[test]
fn supervisor_with_zero_faults_is_behaviour_identical() {
    let cfg = quick_cfg();
    assert!(cfg.faults.is_empty());
    let location = Location::newark();
    let model = train_for_location(&location, &cfg);
    let plain = run_annual_with_model(
        &SystemSpec::CoolAir(Version::AllNd),
        &location,
        TraceKind::Facebook,
        &cfg,
        Some(model.clone()),
    );
    let supervised = run_annual_with_model(
        &SystemSpec::Supervised(Version::AllNd),
        &location,
        TraceKind::Facebook,
        &cfg,
        Some(model),
    );
    // Healthy sensors and an accurate model: validation passes readings
    // through untouched, the mode stays Normal, the failsafe never arms —
    // so every metric, including the degraded-mode counters, must match
    // the unsupervised run exactly.
    assert_eq!(plain, supervised);
    assert_eq!(supervised.degraded_minutes(), 0);
    assert_eq!(supervised.failsafe_minutes(), 0);
    assert_eq!(supervised.imputed_readings(), 0);
}

#[test]
fn inactive_fault_windows_leave_the_loop_untouched() {
    // A plan whose windows never overlap the simulated days must produce
    // bit-identical results to no fault layer at all.
    let location = Location::newark();
    let cfg = quick_cfg();
    let mut with_dormant = cfg.clone();
    with_dormant.faults = FaultPlan::none().with_window(FaultWindow {
        start: SimTime::from_days(50),
        end: SimTime::from_days(51),
        kind: FaultKind::Sensor { pod: 0, fault: SensorFault::Dropout },
    });
    let a = run_annual(&SystemSpec::Baseline, &location, TraceKind::Facebook, &cfg);
    let b = run_annual(&SystemSpec::Baseline, &location, TraceKind::Facebook, &with_dormant);
    assert_eq!(a.days().len(), b.days().len());
    for (x, y) in a.days().iter().zip(b.days().iter()) {
        if x.day == 50 {
            continue;
        }
        assert_eq!(x, y, "day {} diverged under a dormant fault plan", x.day);
    }
}

#[test]
fn failsafe_bounds_inlet_under_total_sensor_dropout() {
    // Every pod sensor drops out for a whole summer day in Chad. The
    // unsupervised optimizer keeps acting on frozen readings; the
    // supervisor detects the exact-repetition streaks, loses all trust,
    // and falls back to blind AC.
    let location = Location::chad();
    let day = 150u64;
    let mut cfg = quick_cfg();
    cfg.stride = 365; // only day 0 sampled by default...
    cfg.engine = SimConfig { record_minutes: true, ..SimConfig::default() };
    let mut plan = FaultPlan::none();
    for pod in 0..4 {
        plan = plan.with_window(FaultWindow {
            // Cover the warm-up too, so the day starts already blind.
            start: SimTime::from_secs(day * 86_400 - 4 * 3_600),
            end: SimTime::from_days(day + 1),
            kind: FaultKind::Sensor { pod, fault: SensorFault::Dropout },
        });
    }
    cfg.faults = plan;
    let model = train_for_location(&location, &cfg);

    let run = |sys: &SystemSpec, model| {
        // Drive one recorded day directly through the annual machinery by
        // sampling just that day.
        let mut c = cfg.clone();
        c.stride = 365;
        run_annual_day(sys, &location, &c, model, day)
    };
    let plain = run(&SystemSpec::CoolAir(Version::AllNd), Some(model.clone()));
    let supervised = run(&SystemSpec::Supervised(Version::AllNd), Some(model));

    assert!(
        supervised.1 <= 34.0,
        "failsafe must bound the max inlet near the 30 °C limit, got {:.1} °C",
        supervised.1
    );
    assert!(
        supervised.1 <= plain.1,
        "supervised max inlet {:.1} °C must not exceed unsupervised {:.1} °C",
        supervised.1,
        plain.1
    );
    assert!(
        supervised.0.failsafe_minutes() > 0,
        "total dropout must engage the blind-AC failsafe"
    );
}

/// Runs one specific day and returns (its summary, max observed inlet °C).
fn run_annual_day(
    sys: &SystemSpec,
    location: &Location,
    cfg: &AnnualConfig,
    model: Option<coolair_suite::core::CoolingModel>,
    day: u64,
) -> (coolair_suite::sim::AnnualSummary, f64) {
    use coolair_suite::sim::AnnualSummary;
    // The annual runner only samples `0, stride, …`; to pin an arbitrary
    // day we run the engine pieces directly.
    use coolair_suite::core::{CoolAir, CoolAirConfig, SupervisedCoolAir, SupervisorConfig};
    use coolair_suite::sim::{SimController, Simulation};
    use coolair_suite::thermal::PlantConfig;
    use coolair_suite::weather::{Forecaster, TmySeries};
    use coolair_suite::workload::{facebook_trace, Cluster, ClusterConfig};

    let tmy = TmySeries::generate(location, cfg.weather_seed);
    let forecaster = Forecaster::perfect(tmy.clone())
        .with_glitches(cfg.faults.forecast_glitches());
    let build = |version| {
        CoolAir::new(
            version,
            CoolAirConfig::default(),
            model.clone().expect("model provided"),
            forecaster.clone(),
            cfg.infrastructure,
        )
    };
    let controller = match sys {
        SystemSpec::CoolAir(v) => SimController::CoolAir(Box::new(build(*v))),
        SystemSpec::Supervised(v) => SimController::Supervised(Box::new(SupervisedCoolAir::new(
            build(*v),
            SupervisorConfig::default(),
        ))),
        _ => panic!("test only drives CoolAir-family systems"),
    };
    let mut sim = Simulation::new(
        controller,
        PlantConfig::smooth(),
        Cluster::new(ClusterConfig::parasol()),
        tmy,
        cfg.engine.clone(),
    );
    sim.set_fault_plan(cfg.faults.clone());
    let out = sim.run_day(day, facebook_trace(cfg.trace_seed).jobs_for_day(day));
    let max_inlet = out.minutes.iter().map(|m| m.max_inlet).fold(f64::NEG_INFINITY, f64::max);
    (AnnualSummary::new(vec![out.record]), max_inlet)
}

/// A nested drill on one day: every level's windows are a superset of the
/// previous level's. `hours` scales the sensor-dropout coverage; an AC
/// lockout rides along at half that length once `hours >= 2`.
fn drill_plan(day: u64, pods: usize, hours: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if hours == 0 {
        return plan;
    }
    let start = day * 86_400 + 6 * 3_600;
    for pod in 0..pods {
        plan = plan.with_window(FaultWindow {
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + hours * 3_600),
            kind: FaultKind::Sensor { pod, fault: SensorFault::Dropout },
        });
    }
    if hours >= 2 {
        plan = plan.with_window(FaultWindow {
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + (hours / 2) * 3_600),
            kind: FaultKind::Actuator(ActuatorFault::AcLockout),
        });
    }
    plan
}

#[test]
fn combined_sensor_and_actuator_faults_climb_the_ladder_deterministically() {
    // Sensor dropout on two pods AND an AC lockout overlapping it in the
    // same run: the supervisor must escalate (two invalid sensors cross
    // the default fallback threshold), stay deterministic, and come back
    // down once the windows clear.
    let location = Location::newark();
    let day = 150u64;
    let mut cfg = quick_cfg();
    cfg.stride = 365;
    cfg.engine = SimConfig { record_minutes: true, ..SimConfig::default() };
    cfg.faults = drill_plan(day, 2, 6);
    let model = train_for_location(&location, &cfg);
    let sys = SystemSpec::Supervised(Version::AllNd);

    let (a, a_inlet) = run_annual_day(&sys, &location, &cfg, Some(model.clone()), day);
    let (b, b_inlet) = run_annual_day(&sys, &location, &cfg, Some(model), day);
    assert_eq!(a, b, "combined faults must not break run determinism");
    assert_eq!(a_inlet.to_bits(), b_inlet.to_bits());
    assert!(a.fault_minutes() > 0, "the drill must actually be active");
    assert!(
        a.degraded_minutes() > 0,
        "two dropped sensors plus a locked-out compressor must leave Normal mode"
    );
    assert!(
        a.degraded_minutes() < 24 * 60,
        "the ladder must recover after the windows clear, got {} degraded minutes",
        a.degraded_minutes()
    );
}

#[test]
fn raising_fault_severity_never_lowers_the_ladder_state() {
    // Four drills whose windows strictly nest (longer dropout on more
    // pods, longer lockout). More faults can only push the supervisor
    // further up the ladder: total time away from Normal and the number
    // of imputed readings must be monotone in the drill size.
    let location = Location::newark();
    let day = 150u64;
    let mut base = quick_cfg();
    base.stride = 365;
    base.engine = SimConfig { record_minutes: true, ..SimConfig::default() };
    let model = train_for_location(&location, &base);
    let sys = SystemSpec::Supervised(Version::AllNd);

    let levels = [(0usize, 0u64), (2, 2), (4, 6), (4, 12)];
    let mut engaged = Vec::new();
    let mut imputed = Vec::new();
    let mut failsafe = Vec::new();
    for (pods, hours) in levels {
        let mut cfg = base.clone();
        cfg.faults = drill_plan(day, pods, hours);
        let (summary, _) = run_annual_day(&sys, &location, &cfg, Some(model.clone()), day);
        engaged.push(summary.degraded_minutes() + summary.failsafe_minutes());
        imputed.push(summary.imputed_readings());
        failsafe.push(summary.failsafe_minutes());
    }
    // The fault-free run is the baseline, not necessarily zero: a hot
    // summer day arms the protective failsafe on its own for a short
    // spell. Severity must only ever add to the baseline.
    assert!(
        engaged.windows(2).all(|w| w[0] <= w[1]),
        "ladder engagement must be monotone in fault severity: {engaged:?}"
    );
    assert!(engaged[3] > engaged[1], "the largest drill must clearly dominate the smallest");
    // Imputation is deliberately NOT monotone: it needs surviving sensors
    // to impute *from*. Partial dropout imputes; total dropout has nothing
    // left to lean on and must escalate to the blind-AC failsafe instead.
    assert_eq!(imputed[0], 0, "no faults, nothing to impute");
    assert!(imputed[1] > 0, "partial dropout must impute from the surviving sensors");
    assert!(
        failsafe.windows(2).all(|w| w[0] <= w[1]),
        "failsafe time must be monotone in fault severity: {failsafe:?}"
    );
    assert!(
        failsafe[2] > failsafe[1],
        "total dropout must arm the failsafe beyond the thermal baseline: {failsafe:?}"
    );
}
