//! Properties of the learned-control testbed: episode trajectories are
//! byte-identical for the same (spec, actions) pair, a daemon-served
//! episode reproduces the local one bit for bit over the socket, a killed
//! training run resumes byte-identically from a half-populated store, and
//! the headline acceptance claim — on the shipped suite, the best learned
//! policy strictly beats the random-policy floor and stays within the
//! documented margin of TKS on (violation, energy).

use std::path::{Path, PathBuf};
use std::time::Duration;

use coolair_suite::bench::http_client::HttpClient;
use coolair_suite::learn::{
    run_learn_with, LearnOutcome, LearnSpec, PolicySpec, KIND_LEARN_EVAL,
};
use coolair_suite::runner::{Executor, ExecutorConfig, Telemetry};
use coolair_suite::serve::{ServeConfig, Server};
use coolair_suite::sim::{Action, Episode, EpisodeSpec, Reward};
use coolair_suite::weather::Location;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coolair_learn_props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_in_store(spec: &LearnSpec, dir: &Path, resume: bool) -> (LearnOutcome, Telemetry) {
    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        threads: 4,
        store_dir: Some(dir.to_path_buf()),
        resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .expect("open store");
    (run_learn_with(spec, &exec, &telemetry), telemetry)
}

fn outcome_json(outcome: &LearnOutcome) -> String {
    serde_json::to_string(outcome).expect("outcome serializes")
}

fn row<'a>(outcome: &'a LearnOutcome, name: &str) -> &'a coolair_suite::learn::Contender {
    outcome
        .leaderboard
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("leaderboard row {name} missing"))
}

/// Same spec + same action sequence → byte-identical trajectories, with a
/// policy that exercises both action dimensions.
#[test]
fn episode_trajectories_are_byte_identical() {
    let spec = EpisodeSpec::seeded(Location::newark(), 11);
    let actions: Vec<Action> = (0..spec.steps())
        .map(|i| Action {
            setpoint_c: 24.0 + (i % 7) as f64 * 2.0,
            active_servers: 8 + (i as usize * 11) % 57,
        })
        .collect();
    let run = || {
        let mut ep = Episode::new(&spec).expect("valid spec");
        let mut out = Vec::new();
        for a in &actions {
            out.push(ep.step(a).expect("not done"));
        }
        serde_json::to_string(&out).expect("serializes")
    };
    assert_eq!(run(), run());
}

/// A daemon-served episode is the local one, bit for bit: every
/// `POST /episodes/{id}/step` reply body equals the serialized
/// [`coolair_suite::sim::StepResult`] of the same step taken locally.
#[test]
fn served_episode_steps_are_byte_identical_to_local() {
    let mut spec = EpisodeSpec::seeded(Location::newark(), 11);
    // One decision per hour keeps the socket loop brisk (24 steps).
    spec.decision_period = coolair_suite::units::SimDuration::from_minutes(60);
    let actions: Vec<Action> = (0..spec.steps())
        .map(|i| Action {
            setpoint_c: 26.0 + (i % 5) as f64 * 2.0,
            active_servers: 16 + (i as usize * 7) % 49,
        })
        .collect();
    let local: Vec<String> = {
        let mut ep = Episode::new(&spec).expect("valid spec");
        actions
            .iter()
            .map(|a| serde_json::to_string(&ep.step(a).expect("not done")).expect("serializes"))
            .collect()
    };

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let mut client = HttpClient::connect(addr).expect("connect");
        let created = client.post_json("/episodes", &spec).expect("create");
        assert_eq!(created.status, 201);
        let id = spec.digest().to_string();
        // Identical spec → the same live episode, not a reset.
        assert_eq!(client.post_json("/episodes", &spec).expect("recreate").status, 200);
        for (i, (action, expected)) in actions.iter().zip(&local).enumerate() {
            let resp = client
                .post_json(&format!("/episodes/{id}/step"), action)
                .expect("step");
            assert_eq!(resp.status, 200, "step {i}");
            assert_eq!(
                String::from_utf8(resp.body).expect("utf8"),
                *expected,
                "served step {i} diverged from local"
            );
        }
        // Past the horizon: stepping conflicts, status still serves, and
        // an unknown id is a clean 404 either way.
        let done = client.post_json(&format!("/episodes/{id}/step"), &actions[0]).expect("done");
        assert_eq!(done.status, 409);
        assert_eq!(client.get(&format!("/episodes/{id}")).expect("status").status, 200);
        let missing = client
            .post_json("/episodes/ffffffffffffffff/step", &actions[0])
            .expect("missing");
        assert_eq!(missing.status, 404);
        let shutdown = client.post_json("/shutdown", &()).expect("shutdown");
        assert_eq!(shutdown.status, 200);
    });
}

/// The acceptance pin: on the smoke-sized shipped suite (same Newark
/// fault-ladder layout as [`LearnSpec::shipped`], budget trimmed so CI
/// stays interactive), the best learned policy strictly beats the random
/// floor lexicographically, and stays within the documented margin of
/// TKS: violation no higher than TKS's (the faulted scenarios break TKS,
/// so the learners come out far below it) and energy within +25 % of TKS
/// (see EXPERIMENTS.md `ext_learn` for the measured numbers).
#[test]
fn learned_policy_beats_random_and_tracks_tks() {
    let spec = LearnSpec::smoke(9);
    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(4, telemetry.clone());
    let outcome = run_learn_with(&spec, &exec, &telemetry);

    let learned = row(&outcome, &outcome.best_learned).reward();
    let random = row(&outcome, "random").reward();
    let tks = row(&outcome, "tks").reward();

    assert!(
        learned.better_than(&random),
        "learned {learned:?} must strictly beat random {random:?}"
    );
    assert!(
        learned.violation_cmin <= tks.violation_cmin,
        "learned violation {} vs tks {}",
        learned.violation_cmin,
        tks.violation_cmin
    );
    assert!(
        learned.energy_kwh <= tks.energy_kwh * 1.25,
        "learned energy {} vs tks {}",
        learned.energy_kwh,
        tks.energy_kwh
    );

    // The training curve is monotone non-increasing in the lexicographic
    // order (best-so-far never regresses).
    for learner in ["cem", "q"] {
        let curve: Vec<Reward> = outcome
            .iters
            .iter()
            .filter(|l| l.learner == learner)
            .map(|l| Reward { violation_cmin: l.best_violation, energy_kwh: l.best_energy_kwh })
            .collect();
        assert!(!curve.is_empty(), "{learner} must log iterations");
        for w in curve.windows(2) {
            assert!(
                !w[0].better_than(&w[1]),
                "{learner} best-so-far regressed: {w:?}"
            );
        }
    }
    assert!(outcome.rollouts > 0 && outcome.memo_misses >= outcome.rollouts);
}

/// A killed training run resumed against a half-populated store replays
/// to a byte-identical outcome, with store cache hits doing the saved
/// work.
#[test]
fn killed_learn_resumes_byte_identically() {
    let spec = LearnSpec::smoke(5);

    let full_dir = fresh_dir("full");
    let (full, _) = run_in_store(&spec, &full_dir, false);

    // Simulate a kill: copy only the first half of the eval artifacts
    // (sorted for determinism) into a fresh store, then resume there.
    let resumed_dir = fresh_dir("resumed");
    let src = full_dir.join("artifacts").join(KIND_LEARN_EVAL);
    let dst = resumed_dir.join("artifacts").join(KIND_LEARN_EVAL);
    std::fs::create_dir_all(&dst).expect("mkdir");
    let mut files: Vec<_> = std::fs::read_dir(&src)
        .expect("read store")
        .map(|e| e.expect("entry").path())
        .collect();
    files.sort();
    assert!(files.len() > 4, "smoke run must persist evaluations");
    for f in &files[..files.len() / 2] {
        std::fs::copy(f, dst.join(f.file_name().expect("name"))).expect("copy");
    }

    let (resumed, telemetry) = run_in_store(&spec, &resumed_dir, true);
    assert_eq!(
        outcome_json(&full),
        outcome_json(&resumed),
        "resumed outcome must be byte-identical"
    );
    let cache_hits = telemetry.metrics().counter("runner.cache-hit");
    assert!(cache_hits > 0, "resume must serve evaluations from the store");
}

/// The learned policy in the outcome replays through the episode API to
/// exactly the leaderboard's numbers — the artifact is executable, not
/// just a score.
#[test]
fn outcome_policy_replays_to_leaderboard_numbers() {
    let spec = LearnSpec::smoke(9);
    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(4, telemetry.clone());
    let outcome = run_learn_with(&spec, &exec, &telemetry);

    let mut total = Reward::zero();
    for ep_spec in spec.episodes() {
        let mut ep = Episode::new(&ep_spec).expect("valid spec");
        let covering = ep.covering_servers();
        let total_servers = ep.total_servers();
        let mut step = 0;
        while !ep.is_done() {
            let obs = ep.observe().clone();
            let action = outcome.policy.act(step, &obs, covering, total_servers);
            ep.step(&action).expect("not done");
            step += 1;
        }
        total.accumulate(&ep.total_reward());
    }
    let best = row(&outcome, &outcome.best_learned);
    assert_eq!(total.violation_cmin, best.violation_cmin);
    assert_eq!(total.energy_kwh, best.energy_kwh);
}

/// `PolicySpec::Fixed { 30 }` through the episode loop reproduces the
/// leaderboard's TKS row by construction — pin that equivalence so the
/// baselines can't silently drift apart.
#[test]
fn tks_row_is_the_fixed_baseline_policy() {
    let spec = LearnSpec::smoke(9);
    let telemetry = Telemetry::discard();
    let exec = Executor::in_memory(2, telemetry.clone());
    let outcome = run_learn_with(&spec, &exec, &telemetry);

    let mut total = Reward::zero();
    let policy = PolicySpec::Fixed { setpoint_c: 30.0 };
    for ep_spec in spec.episodes() {
        let mut ep = Episode::new(&ep_spec).expect("valid spec");
        let (covering, total_servers) = (ep.covering_servers(), ep.total_servers());
        let mut step = 0;
        while !ep.is_done() {
            let obs = ep.observe().clone();
            let action = policy.act(step, &obs, covering, total_servers);
            ep.step(&action).expect("not done");
            step += 1;
        }
        total.accumulate(&ep.total_reward());
    }
    let tks = row(&outcome, "tks");
    assert_eq!(total.violation_cmin, tks.violation_cmin);
    assert_eq!(total.energy_kwh, tks.energy_kwh);
}
