//! End-to-end tests of the `coolair-serve` daemon over real sockets:
//! concurrent keep-alive clients, connection-bound backpressure, job
//! submission through to completion, and bit-identical agreement between
//! a job run through the daemon and the same job run offline.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use coolair_suite::bench::http_client::HttpClient;
use coolair_suite::runner::{Executor, Job};
use coolair_suite::serve::{ServeConfig, Server};
use coolair_suite::sim::jobs::AnnualJob;
use coolair_suite::sim::{AnnualConfig, SystemSpec};
use coolair_suite::telemetry::Telemetry;
use coolair_suite::weather::Location;
use coolair_suite::workload::TraceKind;
use serde_json::JsonValue as Value;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

/// A cheap but real job: a handful of simulated days.
fn quick_job() -> AnnualJob {
    AnnualJob {
        system: SystemSpec::Baseline,
        location: Location::newark(),
        trace: TraceKind::Facebook,
        annual: AnnualConfig { stride: 180, ..AnnualConfig::quick() },
    }
}

fn shutdown(addr: std::net::SocketAddr) {
    // Retried with a deadline rather than asserted on the first attempt:
    // the drain request can race connection teardown (a just-dropped
    // client's slot frees only once its server thread notices the close)
    // and get shed with a 503 — and a panic here would deadlock the
    // enclosing `thread::scope` against a `server.run()` that never
    // received its shutdown.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = HttpClient::connect(addr)
            .and_then(|mut c| c.post_json("/shutdown", &()))
            .map(|resp| resp.status);
        match status {
            Ok(200) => return,
            other if Instant::now() > deadline => {
                panic!("shutdown was never accepted (last: {other:?})")
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn body_json(body: &[u8]) -> Value {
    serde_json::from_slice(body).expect("response body is JSON")
}

#[test]
fn sixty_four_concurrent_keep_alive_connections_all_succeed() {
    let server = Server::bind(test_config(), Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let ok = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        std::thread::scope(|clients| {
            for _ in 0..64 {
                clients.spawn(|| {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    for _ in 0..5 {
                        // Keep-alive: five requests over the one socket.
                        let resp = client.get("/healthz").expect("healthz");
                        assert_eq!(resp.status, 200);
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        shutdown(addr);
    });
    assert_eq!(ok.load(Ordering::Relaxed), 64 * 5);
}

#[test]
fn connections_beyond_the_bound_get_503_not_a_hang() {
    let cfg = ServeConfig { max_connections: 3, ..test_config() };
    let server = Server::bind(cfg, Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        // Fill the bound with established keep-alive connections.
        let mut held: Vec<HttpClient> = (0..3)
            .map(|_| {
                let mut c = HttpClient::connect(addr).expect("connect");
                assert_eq!(c.get("/healthz").expect("fill").status, 200);
                c
            })
            .collect();
        // The next connection must be answered 503 promptly — not queued
        // behind the held sockets, and never left hanging.
        let started = Instant::now();
        let mut extra = HttpClient::connect(addr).expect("extra connect");
        let resp = extra.get("/healthz").expect("overload response");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(started.elapsed() < Duration::from_secs(2), "503 was not prompt");
        // Releasing one held connection frees a slot for new clients.
        drop(held.pop());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut retry = HttpClient::connect(addr).expect("retry connect");
            match retry.get("/healthz") {
                Ok(resp) if resp.status == 200 => break,
                _ if Instant::now() > deadline => panic!("slot was never released"),
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        drop(held);
        shutdown(addr);
    });
}

/// The centrepiece: a job submitted over the wire — while other clients
/// hammer `/metrics` and `/jobs` — must complete and report exactly the
/// summary an offline executor computes for the same spec.
#[test]
fn served_job_results_are_bit_identical_to_offline_runs() {
    let job = quick_job();
    let offline = {
        let exec = Executor::in_memory(1, Telemetry::disabled());
        let mut results = exec.run(std::slice::from_ref(&job));
        match results.pop().expect("one result") {
            coolair_suite::runner::JobResult::Computed(s)
            | coolair_suite::runner::JobResult::Cached(s) => s,
            coolair_suite::runner::JobResult::Failed { error, .. } => {
                panic!("offline run failed: {error}")
            }
        }
    };
    let offline_json = serde_json::to_string(&offline).expect("serialize offline");
    let expected_id = job.digest().to_string();

    let server = Server::bind(test_config(), Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());

        let mut client = HttpClient::connect(addr).expect("connect");
        let resp = client.post_json("/jobs", &job).expect("submit");
        assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
        let accepted = body_json(&resp.body);
        assert_eq!(accepted.get("id"), Some(&Value::Str(expected_id.clone())));

        // Background load while the job runs: metrics scrapes and job
        // listings must stay well-formed throughout.
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|bg| {
            bg.spawn(|| {
                let mut noisy = HttpClient::connect(addr).expect("noise connect");
                while !done.load(Ordering::Relaxed) {
                    let m = noisy.get("/metrics").expect("metrics");
                    assert_eq!(m.status, 200);
                    let text = String::from_utf8(m.body).expect("metrics is UTF-8");
                    assert!(text.contains("# TYPE"), "metrics lost its TYPE headers");
                    let l = noisy.get("/jobs").expect("jobs list");
                    assert_eq!(l.status, 200);
                    body_json(&l.body);
                }
            });

            let deadline = Instant::now() + Duration::from_secs(120);
            let result = loop {
                let resp = client.get(&format!("/jobs/{expected_id}")).expect("poll");
                assert_eq!(resp.status, 200);
                let record = body_json(&resp.body);
                match record.get("state") {
                    Some(Value::Str(state)) if state == "done" => {
                        break record.get("result").expect("done record has result").clone();
                    }
                    Some(Value::Str(state)) if state == "failed" => {
                        panic!("served job failed: {record:?}");
                    }
                    _ => {}
                }
                assert!(Instant::now() < deadline, "job did not finish in time");
                std::thread::sleep(Duration::from_millis(50));
            };
            done.store(true, Ordering::Relaxed);

            let served_json = serde_json::to_string(&result).expect("serialize served");
            assert_eq!(served_json, offline_json, "served summary diverged from offline run");
        });

        // Idempotent resubmission: same spec, same id, no second run.
        let resp = client.post_json("/jobs", &job).expect("resubmit");
        assert_eq!(resp.status, 200);
        let record = body_json(&resp.body);
        assert_eq!(record.get("id"), Some(&Value::Str(expected_id.clone())));

        shutdown(addr);
    });
}

/// Malformed bytes on a fresh socket: the daemon answers 4xx and closes,
/// and stays healthy for the next client.
#[test]
fn garbage_bytes_do_not_poison_the_daemon() {
    let server = Server::bind(test_config(), Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        for garbage in [&b"\x00\xffnonsense\r\n\r\n"[..], &b"GET  HTTP/9.9\r\n\r\n"[..]] {
            use std::io::Write as _;
            let mut raw = TcpStream::connect(addr).expect("connect");
            raw.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
            raw.write_all(garbage).expect("write garbage");
            // Whatever comes back (an error status or a straight close),
            // the daemon must still serve the next request.
            let mut sink = Vec::new();
            use std::io::Read as _;
            let _ = raw.take(4096).read_to_end(&mut sink);
        }
        let mut client = HttpClient::connect(addr).expect("connect after garbage");
        assert_eq!(client.get("/healthz").expect("healthz").status, 200);
        shutdown(addr);
    });
}
