//! End-to-end tests of the `coolair-serve` daemon over real sockets:
//! concurrent keep-alive clients, connection-bound backpressure, job
//! submission through to completion, and bit-identical agreement between
//! a job run through the daemon and the same job run offline.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use coolair_suite::bench::http_client::HttpClient;
use coolair_suite::runner::{Executor, Job};
use coolair_suite::serve::{ServeConfig, Server};
use coolair_suite::sim::jobs::AnnualJob;
use coolair_suite::sim::{AnnualConfig, SystemSpec};
use coolair_suite::telemetry::Telemetry;
use coolair_suite::weather::Location;
use coolair_suite::workload::TraceKind;
use serde_json::JsonValue as Value;

fn test_config() -> ServeConfig {
    // CI runs this whole suite twice: COOLAIR_SERVE_LOOPS=1 (single
    // event loop, every connection multiplexed on one epoll instance)
    // and =4 (cross-shard accept distribution). 0 means auto-size.
    let event_loops = std::env::var("COOLAIR_SERVE_LOOPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        event_loops,
        ..ServeConfig::default()
    }
}

/// A cheap but real job: a handful of simulated days.
fn quick_job() -> AnnualJob {
    AnnualJob {
        system: SystemSpec::Baseline,
        location: Location::newark(),
        trace: TraceKind::Facebook,
        annual: AnnualConfig { stride: 180, ..AnnualConfig::quick() },
    }
}

fn shutdown(addr: std::net::SocketAddr) {
    // Retried with a deadline rather than asserted on the first attempt:
    // the drain request can race connection teardown (a just-dropped
    // client's slot frees only once its server thread notices the close)
    // and get shed with a 503 — and a panic here would deadlock the
    // enclosing `thread::scope` against a `server.run()` that never
    // received its shutdown.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = HttpClient::connect(addr)
            .and_then(|mut c| c.post_json("/shutdown", &()))
            .map(|resp| resp.status);
        match status {
            Ok(200) => return,
            other if Instant::now() > deadline => {
                panic!("shutdown was never accepted (last: {other:?})")
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn body_json(body: &[u8]) -> Value {
    serde_json::from_slice(body).expect("response body is JSON")
}

#[test]
fn sixty_four_concurrent_keep_alive_connections_all_succeed() {
    let server = Server::bind(test_config(), Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let ok = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        std::thread::scope(|clients| {
            for _ in 0..64 {
                clients.spawn(|| {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    for _ in 0..5 {
                        // Keep-alive: five requests over the one socket.
                        let resp = client.get("/healthz").expect("healthz");
                        assert_eq!(resp.status, 200);
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        shutdown(addr);
    });
    assert_eq!(ok.load(Ordering::Relaxed), 64 * 5);
}

#[test]
fn connections_beyond_the_bound_get_503_not_a_hang() {
    let cfg = ServeConfig { max_connections: 3, ..test_config() };
    let server = Server::bind(cfg, Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        // Fill the bound with established keep-alive connections.
        let mut held: Vec<HttpClient> = (0..3)
            .map(|_| {
                let mut c = HttpClient::connect(addr).expect("connect");
                assert_eq!(c.get("/healthz").expect("fill").status, 200);
                c
            })
            .collect();
        // The next connection must be answered 503 promptly — not queued
        // behind the held sockets, and never left hanging.
        let started = Instant::now();
        let mut extra = HttpClient::connect(addr).expect("extra connect");
        let resp = extra.get("/healthz").expect("overload response");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(started.elapsed() < Duration::from_secs(2), "503 was not prompt");
        // Releasing one held connection frees a slot for new clients.
        drop(held.pop());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut retry = HttpClient::connect(addr).expect("retry connect");
            match retry.get("/healthz") {
                Ok(resp) if resp.status == 200 => break,
                _ if Instant::now() > deadline => panic!("slot was never released"),
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        drop(held);
        shutdown(addr);
    });
}

/// The centrepiece: a job submitted over the wire — while other clients
/// hammer `/metrics` and `/jobs` — must complete and report exactly the
/// summary an offline executor computes for the same spec.
#[test]
fn served_job_results_are_bit_identical_to_offline_runs() {
    let job = quick_job();
    let offline = {
        let exec = Executor::in_memory(1, Telemetry::disabled());
        let mut results = exec.run(std::slice::from_ref(&job));
        match results.pop().expect("one result") {
            coolair_suite::runner::JobResult::Computed(s)
            | coolair_suite::runner::JobResult::Cached(s) => s,
            coolair_suite::runner::JobResult::Failed { error, .. } => {
                panic!("offline run failed: {error}")
            }
        }
    };
    let offline_json = serde_json::to_string(&offline).expect("serialize offline");
    let expected_id = job.digest().to_string();

    let server = Server::bind(test_config(), Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());

        let mut client = HttpClient::connect(addr).expect("connect");
        let resp = client.post_json("/jobs", &job).expect("submit");
        assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
        let accepted = body_json(&resp.body);
        assert_eq!(accepted.get("id"), Some(&Value::Str(expected_id.clone())));

        // Background load while the job runs: metrics scrapes and job
        // listings must stay well-formed throughout.
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|bg| {
            bg.spawn(|| {
                let mut noisy = HttpClient::connect(addr).expect("noise connect");
                while !done.load(Ordering::Relaxed) {
                    let m = noisy.get("/metrics").expect("metrics");
                    assert_eq!(m.status, 200);
                    let text = String::from_utf8(m.body).expect("metrics is UTF-8");
                    assert!(text.contains("# TYPE"), "metrics lost its TYPE headers");
                    let l = noisy.get("/jobs").expect("jobs list");
                    assert_eq!(l.status, 200);
                    body_json(&l.body);
                }
            });

            let deadline = Instant::now() + Duration::from_secs(120);
            let result = loop {
                let resp = client.get(&format!("/jobs/{expected_id}")).expect("poll");
                assert_eq!(resp.status, 200);
                let record = body_json(&resp.body);
                match record.get("state") {
                    Some(Value::Str(state)) if state == "done" => {
                        break record.get("result").expect("done record has result").clone();
                    }
                    Some(Value::Str(state)) if state == "failed" => {
                        panic!("served job failed: {record:?}");
                    }
                    _ => {}
                }
                assert!(Instant::now() < deadline, "job did not finish in time");
                std::thread::sleep(Duration::from_millis(50));
            };
            done.store(true, Ordering::Relaxed);

            let served_json = serde_json::to_string(&result).expect("serialize served");
            assert_eq!(served_json, offline_json, "served summary diverged from offline run");
        });

        // Idempotent resubmission: same spec, same id, no second run.
        let resp = client.post_json("/jobs", &job).expect("resubmit");
        assert_eq!(resp.status, 200);
        let record = body_json(&resp.body);
        assert_eq!(record.get("id"), Some(&Value::Str(expected_id.clone())));

        shutdown(addr);
    });
}

/// A slow-loris client dribbling header bytes one at a time must be cut
/// by the read deadline: partial reads never re-arm it, so the
/// connection dies ~`read_timeout` after accept no matter how steadily
/// bytes trickle in — and the daemon stays healthy afterwards.
#[test]
fn a_slow_loris_header_dribble_is_cut_by_the_read_deadline() {
    use std::io::{Read as _, Write as _};
    let cfg = ServeConfig { read_timeout: Duration::from_millis(500), ..test_config() };
    let server = Server::bind(cfg, Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let mut raw = TcpStream::connect(addr).expect("connect");
        // The read timeout doubles as the dribble pacing: one byte per
        // ~50ms, far slower than a real client, never a complete head.
        raw.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
        raw.write_all(b"GET /healthz HTTP/1.1\r\nx-dribble: ").expect("start request");
        let started = Instant::now();
        let mut cut = false;
        while started.elapsed() < Duration::from_secs(10) {
            let _ = raw.write_all(b"a");
            let mut buf = [0u8; 64];
            match raw.read(&mut buf) {
                Ok(0) => {
                    cut = true;
                    break;
                }
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => {
                    // A reset counts too: the server closed on us.
                    cut = true;
                    break;
                }
            }
        }
        assert!(cut, "slow-loris connection was never cut");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "read deadline took {:?} to fire",
            started.elapsed()
        );
        let mut client = HttpClient::connect(addr).expect("connect after loris");
        assert_eq!(client.get("/healthz").expect("healthz").status, 200);
        shutdown(addr);
    });
}

/// A client that requests a large artifact and then stops reading must
/// be cut by the write-stall deadline once the kernel buffers fill and
/// the reactor's writes stop making progress — freeing the slot instead
/// of pinning it until the client deigns to read.
#[test]
fn a_stalled_reader_mid_artifact_trips_the_write_deadline() {
    use std::io::{Read as _, Write as _};
    const ARTIFACT_BYTES: u64 = 16 << 20;
    let dir = std::env::temp_dir()
        .join("coolair_serve_stall")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig {
        write_timeout: Duration::from_millis(500),
        store_dir: Some(dir.clone()),
        ..test_config()
    };
    let server = Server::bind(cfg, Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    // Plant an artifact big enough that loopback socket buffers cannot
    // swallow it whole: the stream has to stall while the body is still
    // mostly unsent, which is exactly what the deadline guards.
    let digest: coolair_suite::runner::Digest = "00112233aabbccdd".parse().expect("digest");
    let path =
        server.state().executor.store().expect("store").path_for("annual-summary", digest);
    std::fs::create_dir_all(path.parent().expect("kind dir")).expect("mkdir");
    std::fs::write(&path, vec![b'x'; ARTIFACT_BYTES as usize]).expect("write artifact");

    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(1))).expect("timeout");
        // Shrink our receive window so the server's writes jam quickly
        // and deterministically.
        coolair_suite::serve::sys::set_recv_buffer(&raw, 16 * 1024).expect("rcvbuf");
        raw.write_all(
            format!("GET /artifacts/annual-summary/{digest} HTTP/1.1\r\nhost: t\r\n\r\n")
                .as_bytes(),
        )
        .expect("request");
        // Confirm the stream started, then stall without reading.
        let mut first = [0u8; 4096];
        let n = raw.read(&mut first).expect("first bytes");
        assert!(first[..n].starts_with(b"HTTP/1.1 200"), "stream did not start with 200");
        std::thread::sleep(Duration::from_millis(1500)); // 3x the write deadline
        // Drain whatever the kernel buffered; the server must have closed
        // mid-body rather than waiting out the stall.
        let mut total = n as u64;
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            assert!(Instant::now() < deadline, "stalled connection was never closed");
            match raw.read(&mut buf) {
                Ok(0) => break,
                Ok(m) => total += m as u64,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => break,
            }
        }
        assert!(
            total < ARTIFACT_BYTES,
            "the whole {ARTIFACT_BYTES}-byte artifact arrived ({total} bytes read) — \
             the write never stalled server-side"
        );
        // The slot freed: a fresh client is served immediately.
        let mut client = HttpClient::connect(addr).expect("connect after stall");
        assert_eq!(client.get("/healthz").expect("healthz").status, 200);
        shutdown(addr);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /jobs/{id}/events` replays the job's lifecycle as NDJSON chunks
/// and closes after the terminal record — whose bytes must match a plain
/// `GET /jobs/{id}` poll exactly.
#[test]
fn job_event_stream_replays_the_lifecycle_and_ends_on_the_final_record() {
    use std::io::Write as _;
    let server = Server::bind(test_config(), Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let job = quick_job();
        let mut client = HttpClient::connect(addr).expect("connect");
        let resp = client.post_json("/jobs", &job).expect("submit");
        assert_eq!(resp.status, 202, "{}", String::from_utf8_lossy(&resp.body));
        let Some(Value::Str(id)) = body_json(&resp.body).get("id").cloned() else {
            panic!("accepted reply has no id")
        };

        // A raw socket for the stream: the response ends (and the server
        // closes) only once the job reaches a terminal state, so one
        // blocking read_response sees the whole lifecycle.
        let mut raw = TcpStream::connect(addr).expect("connect stream");
        raw.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
        raw.write_all(format!("GET /jobs/{id}/events HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
            .expect("stream request");
        let stream =
            coolair_suite::serve::http::read_response(&mut raw).expect("stream response");
        assert_eq!(stream.status, 200);
        assert_eq!(stream.header("content-type"), Some("application/x-ndjson"));
        assert_eq!(stream.header("transfer-encoding"), Some("chunked"));
        let text = String::from_utf8(stream.body).expect("ndjson is UTF-8");
        // Blank lines are keep-alive heartbeats; every other line is one
        // state-transition event for this job.
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        assert!(!lines.is_empty(), "stream carried no events");
        for line in &lines {
            let event: Value = serde_json::from_str(line).expect("event is JSON");
            assert_eq!(event.get("id"), Some(&Value::Str(id.clone())));
        }
        let last = *lines.last().expect("at least one event");
        let final_event: Value = serde_json::from_str(last).expect("final event is JSON");
        assert_eq!(
            final_event.get("state"),
            Some(&Value::Str("done".into())),
            "stream ended on a non-terminal state: {final_event:?}"
        );

        // Byte-identity with the poll endpoint: same record, same
        // serialization path, so the bytes must agree exactly.
        let poll = client.get(&format!("/jobs/{id}")).expect("poll");
        assert_eq!(poll.status, 200);
        assert_eq!(
            last.as_bytes(),
            &poll.body[..],
            "final stream event diverged from GET /jobs/{id}"
        );
        shutdown(addr);
    });
}

/// Malformed bytes on a fresh socket: the daemon answers 4xx and closes,
/// and stays healthy for the next client.
#[test]
fn garbage_bytes_do_not_poison_the_daemon() {
    let server = Server::bind(test_config(), Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        for garbage in [&b"\x00\xffnonsense\r\n\r\n"[..], &b"GET  HTTP/9.9\r\n\r\n"[..]] {
            use std::io::Write as _;
            let mut raw = TcpStream::connect(addr).expect("connect");
            raw.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
            raw.write_all(garbage).expect("write garbage");
            // Whatever comes back (an error status or a straight close),
            // the daemon must still serve the next request.
            let mut sink = Vec::new();
            use std::io::Read as _;
            let _ = raw.take(4096).read_to_end(&mut sink);
        }
        let mut client = HttpClient::connect(addr).expect("connect after garbage");
        assert_eq!(client.get("/healthz").expect("healthz").status, 200);
        shutdown(addr);
    });
}
