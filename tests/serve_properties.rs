//! Properties of the hand-written HTTP/1.1 parser behind `coolair-serve`:
//! arbitrary bytes must never panic it (the daemon faces the network), a
//! valid encoded request must round-trip exactly, and truncation must
//! report `Incomplete` — never a false `Complete` and never a crash.

use coolair_suite::serve::http::{
    encode_request, parse_request, parse_response, Limits, Parsed,
};
use proptest::prelude::*;

fn limits() -> Limits {
    Limits::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fuzz resistance: any byte soup yields Complete/Incomplete/Error,
    /// never a panic, on both the request and response parsers.
    #[test]
    fn arbitrary_bytes_never_panic_the_parsers(
        bytes in proptest::collection::vec(0u8..=255u8, 0..2048)
    ) {
        let _ = parse_request(&bytes, &limits());
        let _ = parse_response(&bytes, &limits());
    }

    /// A structurally valid request survives encode → parse unchanged,
    /// and the parser consumes exactly the encoded bytes (the keep-alive
    /// pipelining invariant).
    #[test]
    fn valid_requests_round_trip(
        method in proptest::sample::subsequence(vec!["GET", "POST", "PUT", "DELETE"], 1),
        seg_a in 0u32..1000,
        seg_b in 0u32..1000,
        header_v in 0u64..u64::MAX,
        body in proptest::collection::vec(0u8..=255u8, 0..512),
    ) {
        let method = method[0];
        let target = format!("/seg{seg_a}/item{seg_b}?q={header_v}");
        let headers = vec![("x-probe".to_string(), header_v.to_string())];
        let wire = encode_request(method, &target, &headers, &body);
        match parse_request(&wire, &limits()) {
            Parsed::Complete(req, used) => {
                prop_assert_eq!(used, wire.len());
                prop_assert_eq!(req.method.as_str(), method);
                prop_assert_eq!(req.target.as_str(), target.as_str());
                let probe = header_v.to_string();
                prop_assert_eq!(req.header("x-probe"), Some(probe.as_str()));
                prop_assert_eq!(req.body, body);
            }
            other => prop_assert!(false, "valid request failed to parse: {:?}", other),
        }
    }

    /// Every proper prefix of a valid request is Incomplete (the parser
    /// must wait for more bytes, not guess), and appending pipelined
    /// bytes after a complete request leaves them unconsumed.
    #[test]
    fn truncation_is_incomplete_and_pipelining_leaves_a_tail(
        cut_seed in 0usize..10_000,
        body in proptest::collection::vec(0u8..=255u8, 1..256),
    ) {
        let wire = encode_request("POST", "/jobs", &[], &body);
        let cut = 1 + cut_seed % (wire.len() - 1);
        match parse_request(&wire[..cut], &limits()) {
            Parsed::Incomplete => {}
            other => prop_assert!(false, "prefix of {cut} bytes gave {:?}", other),
        }
        let mut pipelined = wire.clone();
        pipelined.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        match parse_request(&pipelined, &limits()) {
            Parsed::Complete(req, used) => {
                prop_assert_eq!(used, wire.len());
                prop_assert_eq!(req.body, body);
            }
            other => prop_assert!(false, "pipelined parse gave {:?}", other),
        }
    }
}
