//! End-to-end closed-loop tests: controllers against the physics plant via
//! the simulation engine.

use coolair_suite::core::{CoolAir, CoolAirConfig, Version};
use coolair_suite::sim::{
    train_for_location, AnnualConfig, SimConfig, SimController, Simulation,
};
use coolair_suite::thermal::{Infrastructure, PlantConfig, TksConfig, TksController};
use coolair_suite::weather::{Forecaster, Location, TmySeries};
use coolair_suite::workload::{facebook_trace, Cluster, ClusterConfig};

fn coolair_sim(version: Version, location: &Location, deferrable: bool) -> Simulation {
    let cfg = AnnualConfig::quick();
    let tmy = TmySeries::generate(location, cfg.weather_seed);
    let model = train_for_location(location, &cfg);
    let _ = deferrable;
    Simulation::new(
        SimController::CoolAir(Box::new(CoolAir::new(
            version,
            CoolAirConfig::default(),
            model,
            Forecaster::perfect(tmy.clone()),
            Infrastructure::Smooth,
        ))),
        PlantConfig::smooth(),
        Cluster::new(ClusterConfig::parasol()),
        tmy,
        SimConfig { record_minutes: true, ..SimConfig::default() },
    )
}

#[test]
fn allnd_holds_band_on_a_mild_day() {
    let mut sim = coolair_sim(Version::AllNd, &Location::santiago(), false);
    let trace = facebook_trace(1);
    let out = sim.run_day(100, trace.jobs_for_day(100));
    // The overwhelming majority of minutes stay within ±2 °C of the band.
    let in_band = out
        .minutes
        .iter()
        .filter(|m| {
            let Some((lo, hi)) = m.band else { return true };
            m.max_inlet <= hi + 2.0 && m.min_inlet >= lo - 3.0
        })
        .count();
    assert!(
        in_band as f64 / out.minutes.len() as f64 > 0.8,
        "only {}/{} minutes near the band",
        in_band,
        out.minutes.len()
    );
    assert!(out.record.worst_range() < 12.0, "range {}", out.record.worst_range());
}

#[test]
fn allnd_beats_baseline_variation_on_a_winter_day() {
    let location = Location::newark();
    let trace = facebook_trace(1);
    let day = 21; // late January

    let cfg = AnnualConfig::quick();
    let tmy = TmySeries::generate(&location, cfg.weather_seed);
    let mut baseline = Simulation::new(
        SimController::Baseline(TksController::new(TksConfig::baseline())),
        PlantConfig::smooth(),
        Cluster::new(ClusterConfig::parasol()),
        tmy,
        SimConfig::default(),
    );
    let base_out = baseline.run_day(day, trace.jobs_for_day(day));

    let mut coolair = coolair_sim(Version::AllNd, &location, false);
    let cool_out = coolair.run_day(day, trace.jobs_for_day(day));

    assert!(
        cool_out.record.worst_range() < base_out.record.worst_range(),
        "All-ND range {:.1} not below baseline {:.1}",
        cool_out.record.worst_range(),
        base_out.record.worst_range()
    );
}

#[test]
fn deferrable_jobs_meet_deadlines_under_energy_def() {
    let location = Location::newark();
    let cfg = AnnualConfig::quick();
    let tmy = TmySeries::generate(&location, cfg.weather_seed);
    let model = train_for_location(&location, &cfg);
    let mut sim = Simulation::new(
        SimController::CoolAir(Box::new(CoolAir::new(
            Version::EnergyDef,
            CoolAirConfig::default(),
            model,
            Forecaster::perfect(tmy.clone()),
            Infrastructure::Smooth,
        ))),
        PlantConfig::smooth(),
        Cluster::new(ClusterConfig::parasol()),
        tmy,
        SimConfig::default(),
    );
    let trace = facebook_trace(2).with_deadlines(coolair_suite::units::SimDuration::from_hours(6));
    let out = sim.run_day(200, trace.jobs_for_day(200));
    assert_eq!(sim.cluster().deadline_violations(), 0);
    // Work still gets done.
    assert!(out.record.jobs_completed > 1000, "completed {}", out.record.jobs_completed);
}

#[test]
fn hot_climate_uses_ac_but_still_bounds_temperature() {
    let mut sim = coolair_sim(Version::AllNd, &Location::singapore(), false);
    let trace = facebook_trace(1);
    let out = sim.run_day(150, trace.jobs_for_day(150));
    assert!(out.record.cooling_kwh > 1.0, "Singapore needs cooling energy");
    assert!(
        out.record.avg_violation() < 1.5,
        "violations {:.2}",
        out.record.avg_violation()
    );
    // Humidity limit largely respected.
    assert!(
        out.record.rh_violation_fraction < 0.4,
        "RH violations {:.2}",
        out.record.rh_violation_fraction
    );
}

#[test]
fn rate_limit_mostly_respected_by_smooth_coolair() {
    let mut sim = coolair_sim(Version::AllNd, &Location::newark(), false);
    let trace = facebook_trace(1);
    let out = sim.run_day(250, trace.jobs_for_day(250));
    assert!(
        out.record.max_rate_c_per_hour < 30.0,
        "max observed rate {:.1} °C/h",
        out.record.max_rate_c_per_hour
    );
}
