//! Property-based tests for the controllers: whatever the sensors say, the
//! commands must be realisable and safe.

use coolair_suite::core::manager::ParasolConfigurer;
use coolair_suite::thermal::{
    CoolingRegime, Infrastructure, SensorReadings, TksConfig, TksController,
};
use coolair_suite::units::{
    psychro, Celsius, FanSpeed, RelativeHumidity, SimTime, Watts,
};
use proptest::prelude::*;

fn readings(inlets: [f64; 4], outside: f64, rh: f64) -> SensorReadings {
    let out = Celsius::new(outside);
    let mean = inlets.iter().sum::<f64>() / 4.0;
    SensorReadings {
        time: SimTime::EPOCH,
        outside_temp: out,
        outside_rh: RelativeHumidity::new(60.0),
        outside_abs: psychro::absolute_humidity(out, RelativeHumidity::new(60.0)),
        pod_inlets: inlets.iter().map(|&t| Celsius::new(t)).collect(),
        cold_aisle_rh: RelativeHumidity::new(rh),
        cold_aisle_abs: psychro::absolute_humidity(
            Celsius::new(mean),
            RelativeHumidity::new(rh),
        ),
        hot_aisle: Celsius::new(mean + 6.0),
        disk_temps: inlets.iter().map(|&t| Celsius::new(t + 9.0)).collect(),
        regime: CoolingRegime::Closed,
        cooling_power: Watts::ZERO,
        it_power: Watts::new(800.0),
        active_fraction: 0.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The TKS always returns a regime realisable on Parasol, and engages
    /// the AC only in HOT mode or under the humidity override.
    #[test]
    fn tks_always_realisable(
        inlet in -5.0..45.0f64,
        spread in 0.0..4.0f64,
        outside in -30.0..48.0f64,
        rh in 5.0..100.0f64,
        steps in 1usize..20,
    ) {
        let mut tks = TksController::new(TksConfig::baseline());
        let inlets = [inlet, inlet + spread, inlet - spread * 0.5, inlet + spread * 0.3];
        for _ in 0..steps {
            let regime = tks.decide(&readings(inlets, outside, rh));
            prop_assert_eq!(regime, Infrastructure::Parasol.sanitize(regime));
            if let CoolingRegime::FreeCooling { fan } = regime {
                prop_assert!(fan >= FanSpeed::PARASOL_MIN);
            }
        }
    }

    /// Sustained cold interiors never run the compressor (no heating by
    /// accident), regardless of humidity.
    #[test]
    fn tks_never_compresses_when_cold(
        inlet in 0.0..20.0f64,
        outside in -30.0..20.0f64,
        rh in 5.0..75.0f64,
    ) {
        let mut tks = TksController::new(TksConfig::baseline());
        for _ in 0..5 {
            let regime = tks.decide(&readings([inlet; 4], outside, rh));
            prop_assert_eq!(regime.compressor(), 0.0, "compressor at inlet {}", inlet);
        }
    }

    /// The Parasol Cooling Configurer's setpoint manipulation always yields
    /// a regime of the class CoolAir asked for, across the operating
    /// envelope where that class is reachable.
    #[test]
    fn configurer_reaches_requested_class(
        inlet in 10.0..38.0f64,
        cold_outside in -20.0..20.0f64,
        hot_outside in 30.0..45.0f64,
    ) {
        let mut c = ParasolConfigurer::new(TksController::new(TksConfig::factory()));
        // Closed is reachable whenever LOT mode holds (cold outside).
        let got = c.apply(CoolingRegime::Closed, &readings([inlet; 4], cold_outside, 40.0));
        prop_assert_eq!(got.class(), CoolingRegime::Closed.class());
        // Free cooling is reachable when inside is warmer than outside.
        if inlet > cold_outside + 3.0 {
            let want = CoolingRegime::free_cooling(FanSpeed::PARASOL_MIN);
            let got = c.apply(want, &readings([inlet; 4], cold_outside, 40.0));
            prop_assert_eq!(got.class(), want.class());
        }
        // AC is reachable when it is hot outside.
        let got = c.apply(CoolingRegime::ac_on(), &readings([inlet.max(26.0); 4], hot_outside, 40.0));
        prop_assert_eq!(got.class(), CoolingRegime::ac_on().class());
    }
}
