//! Property tests for the two-phase prediction engine.
//!
//! Two guarantees back the PR that introduced `PredictionContext` and the
//! optimizer's prediction memo:
//!
//! 1. **Bit-identity of the refactor** — `PredictionContext::predict` must
//!    produce the exact bits of the pre-refactor single-shot
//!    `predict_regime`. The old algorithm (allocate fresh state vectors,
//!    roll the model forward, blend for interpolated regimes) is
//!    transcribed verbatim below as `golden::predict_regime` and compared
//!    field-by-field via `f64::to_bits` across random readings and every
//!    candidate of both infrastructures, plus off-grid regimes that hit
//!    the interpolation branches.
//! 2. **Memo transparency** — the optimizer's candidate memo keys on the
//!    exact bits of every prediction input, so enabling it must not change
//!    a single simulated number. A closed-loop day with the memo at its
//!    default capacity must serialize identically to one with the memo
//!    disabled.

use coolair_suite::core::manager::predictor::{predict_regime, PredictionContext};
use coolair_suite::core::{train_cooling_model, CoolAir, CoolAirConfig, TrainingConfig, Version};
use coolair_suite::sim::{SimConfig, SimController, Simulation};
use coolair_suite::thermal::{CoolingRegime, Infrastructure, PlantConfig, SensorReadings};
use coolair_suite::units::{psychro, Celsius, FanSpeed, RelativeHumidity, SimTime, Watts};
use coolair_suite::weather::{Forecaster, Location, TmySeries};
use coolair_suite::workload::{facebook_trace, Cluster, ClusterConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Verbatim transcription of the pre-refactor Cooling Predictor, kept as
/// the golden reference the two-phase API is checked against.
mod golden {
    use coolair_suite::core::manager::predictor::Prediction;
    use coolair_suite::core::modeler::features::{humidity_features, temp_features};
    use coolair_suite::core::{CoolAirConfig, CoolingModel};
    use coolair_suite::thermal::{
        CoolingRegime, Infrastructure, ModelKey, PodId, RegimeClass, SensorReadings,
    };
    use coolair_suite::units::{psychro, AbsoluteHumidity, Celsius, RelativeHumidity};

    pub fn predict_regime(
        model: &CoolingModel,
        cfg: &CoolAirConfig,
        readings: &SensorReadings,
        prev: Option<&SensorReadings>,
        candidate: CoolingRegime,
        infra: Infrastructure,
    ) -> Prediction {
        let candidate = infra.sanitize(candidate);
        let comp = candidate.compressor();
        let interpolate_ac = infra == Infrastructure::Smooth && comp > 0.0 && comp < 1.0;

        if interpolate_ac {
            let off = predict_single(model, cfg, readings, prev, CoolingRegime::ac_fan_only());
            let on = predict_single(model, cfg, readings, prev, CoolingRegime::ac_on());
            return blend(&off, &on, comp, model, cfg);
        }

        let fan = candidate.fan_speed().fraction();
        let floor = coolair_suite::units::FanSpeed::PARASOL_MIN.fraction();
        if matches!(candidate, CoolingRegime::FreeCooling { .. }) && fan > 0.0 && fan < floor {
            let closed = predict_single(model, cfg, readings, prev, CoolingRegime::Closed);
            let fc_floor = predict_single(
                model,
                cfg,
                readings,
                prev,
                CoolingRegime::free_cooling(coolair_suite::units::FanSpeed::PARASOL_MIN),
            );
            let w = fan / floor;
            let mut out = blend(&closed, &fc_floor, w, model, cfg);
            out.energy_kwh = model.predict_power(RegimeClass::FreeCooling, fan, 0.0) / 1000.0
                * cfg.control_period.as_hours_f64();
            return out;
        }
        predict_single(model, cfg, readings, prev, candidate)
    }

    fn predict_single(
        model: &CoolingModel,
        cfg: &CoolAirConfig,
        readings: &SensorReadings,
        prev: Option<&SensorReadings>,
        candidate: CoolingRegime,
    ) -> Prediction {
        let pods = model.pods();
        let start_class = readings.regime.class();
        let cand_class = candidate.class();
        let fan = candidate.fan_speed().fraction();
        let comp = candidate.compressor();

        let mut t_now: Vec<f64> = readings.pod_inlets.iter().map(|t| t.value()).collect();
        let mut t_prev: Vec<f64> = match prev {
            Some(p) if p.pod_inlets.len() == pods => {
                p.pod_inlets.iter().map(|t| t.value()).collect()
            }
            _ => t_now.clone(),
        };
        let mut w_now = readings.cold_aisle_abs.grams_per_kg();
        let mut fan_prev = readings.regime.fan_speed().fraction();

        let t_out = readings.outside_temp.value();
        let w_out = readings.outside_abs.grams_per_kg();
        let util = readings.active_fraction;

        let mut max_temps = t_now.clone();
        let mut sum_temps = vec![0.0; pods];
        let start = t_now.clone();

        for step in 0..cfg.substeps() {
            let key = if step == 0 {
                ModelKey::for_step(start_class, cand_class)
            } else {
                ModelKey::Steady(cand_class)
            };
            let mut next = vec![0.0; pods];
            for p in 0..pods {
                let x = temp_features(t_now[p], t_prev[p], t_out, t_out, fan, fan_prev, util);
                let predicted = model.predict_temp(key, PodId(p), &x);
                let mut bounded = predicted.clamp(t_now[p] - 12.0, t_now[p] + 12.0);
                if comp <= 0.0 {
                    bounded = bounded.max(t_now[p].min(t_out));
                }
                next[p] = bounded;
                max_temps[p] = max_temps[p].max(next[p]);
                sum_temps[p] += next[p];
            }
            let hx = humidity_features(w_now, w_out, fan);
            w_now = model.predict_humidity(key, &hx).clamp(0.0, 40.0);
            t_prev = std::mem::take(&mut t_now);
            t_now = next;
            fan_prev = fan;
        }

        let mean_t = t_now.iter().sum::<f64>() / pods as f64;
        let final_rh =
            psychro::relative_humidity(Celsius::new(mean_t), AbsoluteHumidity::new(w_now));
        let power_w = model.predict_power(cand_class, fan, comp);
        let energy_kwh = power_w / 1000.0 * cfg.control_period.as_hours_f64();

        let substeps = cfg.substeps() as f64;
        Prediction {
            final_temps: t_now.iter().map(|&t| Celsius::new(t)).collect(),
            max_temps: max_temps.iter().map(|&t| Celsius::new(t)).collect(),
            mean_temps: sum_temps.iter().map(|&s| Celsius::new(s / substeps)).collect(),
            start_temps: start.iter().map(|&t| Celsius::new(t)).collect(),
            deltas: t_now.iter().zip(start.iter()).map(|(a, b)| (a - b).abs()).collect(),
            final_rh,
            energy_kwh,
        }
    }

    fn blend(
        off: &Prediction,
        on: &Prediction,
        comp: f64,
        model: &CoolingModel,
        cfg: &CoolAirConfig,
    ) -> Prediction {
        let mix =
            |a: Celsius, b: Celsius| Celsius::new(a.value() * (1.0 - comp) + b.value() * comp);
        let power_off = model.predict_power(RegimeClass::AcFanOnly, 0.0, 0.0);
        let power_on = model.predict_power(RegimeClass::AcCompressorOn, 0.0, 1.0);
        let energy_w = power_off * (1.0 - comp) + power_on * comp;
        Prediction {
            final_temps: off
                .final_temps
                .iter()
                .zip(on.final_temps.iter())
                .map(|(a, b)| mix(*a, *b))
                .collect(),
            max_temps: off
                .max_temps
                .iter()
                .zip(on.max_temps.iter())
                .map(|(a, b)| mix(*a, *b))
                .collect(),
            mean_temps: off
                .mean_temps
                .iter()
                .zip(on.mean_temps.iter())
                .map(|(a, b)| mix(*a, *b))
                .collect(),
            start_temps: off.start_temps.clone(),
            deltas: off
                .deltas
                .iter()
                .zip(on.deltas.iter())
                .map(|(a, b)| a * (1.0 - comp) + b * comp)
                .collect(),
            final_rh: RelativeHumidity::new(
                off.final_rh.percent() * (1.0 - comp) + on.final_rh.percent() * comp,
            ),
            energy_kwh: energy_w / 1000.0 * cfg.control_period.as_hours_f64(),
        }
    }
}

fn shared_model() -> &'static coolair_suite::core::CoolingModel {
    static MODEL: OnceLock<coolair_suite::core::CoolingModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let tmy = TmySeries::generate(&Location::newark(), 11);
        train_cooling_model(&tmy, &TrainingConfig::quick())
    })
}

fn readings(
    inlets: &[f64],
    outside: f64,
    rh_in: f64,
    util: f64,
    regime: CoolingRegime,
) -> SensorReadings {
    let out = Celsius::new(outside);
    let mean = inlets.iter().sum::<f64>() / inlets.len() as f64;
    SensorReadings {
        time: SimTime::EPOCH,
        outside_temp: out,
        outside_rh: RelativeHumidity::new(60.0),
        outside_abs: psychro::absolute_humidity(out, RelativeHumidity::new(60.0)),
        pod_inlets: inlets.iter().map(|&t| Celsius::new(t)).collect(),
        cold_aisle_rh: RelativeHumidity::new(rh_in),
        cold_aisle_abs: psychro::absolute_humidity(Celsius::new(mean), RelativeHumidity::new(rh_in)),
        hot_aisle: Celsius::new(mean + 6.0),
        disk_temps: inlets.iter().map(|&t| Celsius::new(t + 10.0)).collect(),
        regime,
        cooling_power: Watts::ZERO,
        it_power: Watts::new(500.0),
        active_fraction: util,
    }
}

fn assert_bit_identical(
    want: &coolair_suite::core::manager::predictor::Prediction,
    got: &coolair_suite::core::manager::predictor::Prediction,
    context: &str,
) {
    let vecs = [
        ("final_temps", &want.final_temps, &got.final_temps),
        ("max_temps", &want.max_temps, &got.max_temps),
        ("mean_temps", &want.mean_temps, &got.mean_temps),
        ("start_temps", &want.start_temps, &got.start_temps),
    ];
    for (field, w, g) in vecs {
        assert_eq!(w.len(), g.len(), "{context}: {field} arity");
        for (a, b) in w.iter().zip(g.iter()) {
            assert_eq!(
                a.value().to_bits(),
                b.value().to_bits(),
                "{context}: {field} {a:?} != {b:?}"
            );
        }
    }
    for (a, b) in want.deltas.iter().zip(got.deltas.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: deltas");
    }
    assert_eq!(
        want.final_rh.percent().to_bits(),
        got.final_rh.percent().to_bits(),
        "{context}: final_rh"
    );
    assert_eq!(
        want.energy_kwh.to_bits(),
        got.energy_kwh.to_bits(),
        "{context}: energy_kwh"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `PredictionContext::predict` (and the thin `predict_regime` wrapper)
    /// reproduce the pre-refactor algorithm bit for bit, for every candidate
    /// of both infrastructures plus the interpolated off-grid regimes.
    #[test]
    fn context_predict_is_bit_identical_to_golden(
        t0 in 15.0..35.0f64,
        t1 in 15.0..35.0f64,
        t2 in 15.0..35.0f64,
        t3 in 15.0..35.0f64,
        outside in -10.0..40.0f64,
        rh_in in 20.0..80.0f64,
        util in 0.0..1.0f64,
        prev_delta in -2.0..2.0f64,
        with_prev_bit in 0u8..2,
        start_idx in 0usize..20,
        low_fan in 0.01..0.14f64,
        comp in 0.05..0.95f64,
    ) {
        let model = shared_model();
        let cfg = CoolAirConfig::default();
        for infra in [Infrastructure::Parasol, Infrastructure::Smooth] {
            let candidates = infra.candidate_regimes();
            let start = candidates[start_idx % candidates.len()];
            let inlets = [t0, t1, t2, t3];
            let r = readings(&inlets, outside, rh_in, util, start);
            let prev_inlets: Vec<f64> = inlets.iter().map(|t| t + prev_delta).collect();
            let prev_r = readings(&prev_inlets, outside, rh_in, util, start);
            let prev = (with_prev_bit == 1).then_some(&prev_r);

            // Every on-grid candidate, via one shared context (the optimizer's
            // access pattern), plus the two interpolation families.
            let mut probes = candidates.clone();
            probes.push(CoolingRegime::free_cooling(FanSpeed::saturating(low_fan)));
            probes.push(CoolingRegime::Ac { compressor: comp });

            let mut ctx = PredictionContext::new(model, &cfg, infra, &r, prev);
            for candidate in probes {
                let want = golden::predict_regime(model, &cfg, &r, prev, candidate, infra);
                let got = ctx.predict(candidate);
                assert_bit_identical(&want, &got, &format!("{infra:?} {candidate:?}"));
                let wrapper = predict_regime(model, &cfg, &r, prev, candidate, infra);
                assert_bit_identical(&want, &wrapper, &format!("wrapper {infra:?} {candidate:?}"));
            }
        }
    }
}

/// Enabling the prediction memo changes nothing: a closed-loop simulated
/// day under All-ND serializes identically with the memo at its default
/// capacity and with it disabled.
#[test]
fn memo_on_and_off_days_are_identical() {
    let location = Location::newark();
    let tmy = TmySeries::generate(&location, 42);
    let model = {
        let train_tmy = TmySeries::generate(&location, 42);
        train_cooling_model(&train_tmy, &TrainingConfig::quick())
    };
    let trace = facebook_trace(1);

    let run = |memo_capacity: Option<usize>| {
        let mut ca = CoolAir::new(
            Version::AllNd,
            CoolAirConfig::default(),
            model.clone(),
            Forecaster::perfect(tmy.clone()),
            Infrastructure::Smooth,
        );
        if let Some(cap) = memo_capacity {
            ca.set_prediction_memo_capacity(cap);
        }
        let mut sim = Simulation::new(
            SimController::CoolAir(Box::new(ca)),
            PlantConfig::smooth(),
            Cluster::new(ClusterConfig::parasol()),
            tmy.clone(),
            SimConfig { record_minutes: true, ..SimConfig::default() },
        );
        // Two days in different seasons, for different weather shapes.
        [21u64, 200u64].map(|day| {
            serde_json::to_string(&sim.run_day(day, trace.jobs_for_day(day))).unwrap()
        })
    };

    let memo_on = run(None); // default capacity, memo active
    let memo_off = run(Some(0)); // disabled
    assert_eq!(memo_on, memo_off, "memoization must not change simulated results");
}
