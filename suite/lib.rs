//! Umbrella crate for the CoolAir reproduction workspace.
//!
//! This crate hosts the workspace-level integration tests (`tests/`) and the
//! runnable examples (`examples/`). It re-exports the member crates under
//! short names so examples and tests can write `coolair_suite::sim::...`.
//!
//! The interesting code lives in the member crates:
//!
//! - [`units`] — typed physical quantities and psychrometrics
//! - [`weather`] — synthetic TMY weather, climate archetypes, forecasts
//! - [`ml`] — regression substrate (OLS, LMS, M5P model trees)
//! - [`thermal`] — the Parasol container plant, cooling regimes, TKS controller
//! - [`workload`] — Hadoop-like cluster simulator and trace generators
//! - [`core`] — CoolAir itself (modeler, cooling manager, compute manager)
//! - [`sim`] — Real-Sim / Smooth-Sim engines, metrics, annual & world sweeps
//! - [`telemetry`] — structured events, metrics registry, profiler, recorder
//! - [`runner`] — job executor, artifact store, resumable journals
//! - [`tune`] — worst-case-robust tuning via adversarial scenario decomposition
//! - [`learn`] — gym-style episode baselines (CEM, tabular Q) vs TKS/M5P
//! - [`fleet`] — geo-distributed campus layer with follow-the-cold migration
//! - [`serve`] — HTTP/1.1 control-plane daemon (jobs, artifacts, metrics)
//! - [`bench`](mod@bench) — experiment-bench helpers, incl. the pure-std
//!   HTTP client

pub use coolair as core;
pub use coolair_bench as bench;
pub use coolair_fleet as fleet;
pub use coolair_learn as learn;
pub use coolair_ml as ml;
pub use coolair_runner as runner;
pub use coolair_serve as serve;
pub use coolair_sim as sim;
pub use coolair_telemetry as telemetry;
pub use coolair_thermal as thermal;
pub use coolair_tune as tune;
pub use coolair_units as units;
pub use coolair_weather as weather;
pub use coolair_workload as workload;
