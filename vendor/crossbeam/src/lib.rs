//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the API surface the workspace uses is provided:
//!
//! * `crossbeam::thread::scope`, implemented on top of `std::thread::scope`
//!   (stable since Rust 1.63). As in crossbeam, `scope` returns `Err` if
//!   any spawned thread panicked instead of propagating the panic directly.
//! * `crossbeam::deque` — the `Worker`/`Stealer`/`Steal` work-stealing
//!   deque trio used by the `coolair-runner` pool, implemented with a
//!   mutex-guarded `VecDeque` (correct and contention-light at the
//!   workspace's job granularity; real crossbeam's lock-free Chase-Lev
//!   deque has identical semantics).

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirror of `crossbeam::thread::Scope`: spawn closures that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed threads can be spawned; joins
    /// all of them before returning. Returns `Err` if any thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The owner's end of a work-stealing deque: LIFO push/pop for the
    /// owning worker, with [`Stealer`] handles taking from the other end.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new FIFO worker queue (the owner pops oldest-first, matching
        /// crossbeam's `Worker::new_fifo`).
        #[must_use]
        pub fn new_fifo() -> Self {
            Worker { inner: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Enqueues a task on the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        /// Pops the owner's next task (front of a FIFO queue).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque poisoned").pop_front()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// A stealer handle sharing this queue.
        #[must_use]
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> std::fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Worker").finish_non_exhaustive()
        }
    }

    /// A cloneable handle that steals tasks from the back of a [`Worker`]'s
    /// queue.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task from the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> std::fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Stealer").finish_non_exhaustive()
        }
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The victim's queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried (never produced by
        /// this mutex-based stand-in, but part of crossbeam's contract).
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts to an `Option`, discarding the `Empty`/`Retry`
        /// distinction.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                Steal::Empty | Steal::Retry => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u32, 2, 3, 4];
        let total = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u32 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn deque_owner_pops_fifo_stealers_take_the_back() {
        let w = super::deque::Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1), "owner pops oldest first");
        assert_eq!(s.steal().success(), Some(3), "stealer takes the back");
        assert_eq!(w.pop(), Some(2));
        assert!(w.is_empty());
        assert_eq!(s.steal(), super::deque::Steal::Empty);
    }
}
