//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `crossbeam::thread::scope` API surface the workspace uses is
//! provided, implemented on top of `std::thread::scope` (stable since Rust
//! 1.63). As in crossbeam, `scope` returns `Err` if any spawned thread
//! panicked instead of propagating the panic directly.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirror of `crossbeam::thread::Scope`: spawn closures that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// nested spawns are possible, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed threads can be spawned; joins
    /// all of them before returning. Returns `Err` if any thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u32, 2, 3, 4];
        let total = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u32 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
