//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde` stub's [`Value`] tree to JSON text and
//! parses JSON text back into it. Covers the workspace's API usage:
//! `to_string`, `to_string_pretty`, `to_vec`, `to_vec_pretty`, `from_str`,
//! `from_slice`. Floats are written with Rust's shortest round-trip
//! formatting, so `f64` values survive a serialize/parse cycle exactly.

use serde::de::DeserializeOwned;
use serde::{DeError, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Serializes `value` to compact JSON text.
///
/// # Errors
/// Infallible in this stub (non-finite floats serialize as `null`); the
/// `Result` is kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text.
///
/// # Errors
/// Infallible in this stub; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
///
/// # Errors
/// Infallible in this stub; see [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` to pretty-printed JSON bytes.
///
/// # Errors
/// Infallible in this stub; see [`to_string`].
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips,
                // and always keeps a `.0` or exponent on integral values —
                // the same convention serde_json uses.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Deserializes a value from JSON text.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parses JSON text into the generic [`Value`] tree.
///
/// # Errors
/// Returns [`Error`] on malformed JSON.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not produced by this stub's
                            // writer; map lone surrogates to the replacement
                            // character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let v: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(v, 0.1);
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
        let v: bool = from_str("true").unwrap();
        assert!(v);
        let v: Option<u32> = from_str("null").unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn float_exact_round_trip() {
        for &f in &[std::f64::consts::PI, 1e-300, 12_345.678_901_234_5, -0.0, 3.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn string_escapes() {
        let original = "a\"b\\c\nd\te\u{1}é漢".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn nested_structures_pretty() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn map_round_trip() {
        let mut m = std::collections::HashMap::new();
        m.insert("x".to_string(), 1.25f64);
        m.insert("y".to_string(), -2.0);
        let s = to_string(&m).unwrap();
        let back: std::collections::HashMap<String, f64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("\"unclosed").is_err());
    }
}
