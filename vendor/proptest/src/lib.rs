//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), range strategies over numeric
//! types, tuple strategies, `collection::vec`, `sample::subsequence`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs `cases` deterministic random cases (seeded from the test
//! name) and panics with the generated inputs on the first failure.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases with defaults otherwise.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case's preconditions did not hold; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection (skipped case).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic per-test RNG, seeded from the test's name.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name gives a stable, collision-tolerant seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// A size specification for collection strategies: exact or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing order-preserving subsequences of a source vector.
    pub struct Subsequence<T> {
        source: Vec<T>,
        size: SizeRange,
    }

    /// Generates subsequences of `source` with a length drawn from `size`.
    pub fn subsequence<T: Clone + std::fmt::Debug>(
        source: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence { source, size: size.into() }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn pick(&self, rng: &mut StdRng) -> Vec<T> {
            let n = self.size.pick(rng).min(self.source.len());
            // Reservoir-free selection: keep each index with the exact
            // probability needed to end with n of len, preserving order.
            let mut out = Vec::with_capacity(n);
            let mut needed = n;
            let len = self.source.len();
            for (i, item) in self.source.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let remaining = len - i;
                if rng.gen_range(0..remaining) < needed {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }
}

/// The common imports property tests start from.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0.0..1.0f64) { prop_assert!(x < 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut __rng);)+
                    let __inputs = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            ::std::panic!(
                                "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                                ::std::stringify!($name), __case + 1, __config.cases,
                                __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // prop_assert!/prop_assume! expand to `if !cond`
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_rng("probe");
        let mut b = crate::test_rng("probe");
        let s = 0.0..1.0f64;
        for _ in 0..10 {
            assert_eq!(s.pick(&mut a).to_bits(), s.pick(&mut b).to_bits());
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_rng("sizes");
        let exact = crate::collection::vec(0.0..1.0f64, 24);
        assert_eq!(exact.pick(&mut rng).len(), 24);
        let ranged = crate::collection::vec(0..4usize, 1..40);
        for _ in 0..200 {
            let v = ranged.pick(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = crate::test_rng("subseq");
        let s = crate::sample::subsequence(vec![0usize, 1, 2, 3], 4);
        assert_eq!(s.pick(&mut rng), vec![0, 1, 2, 3]);
        let partial = crate::sample::subsequence(vec![5usize, 6, 7, 8, 9], 2..4);
        for _ in 0..100 {
            let v = partial.pick(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0.0..1.0f64, n in 1usize..5, pair in (0..3usize, -1.0..1.0f64)) {
            prop_assume!(x >= 0.0);
            prop_assert!(x < 1.0);
            prop_assert_eq!(n.min(4), n);
            prop_assert!(pair.0 < 3 && pair.1.abs() <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }
}
