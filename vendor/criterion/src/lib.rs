//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` macro surface plus
//! `Criterion::bench_function`, benchmark groups, and `Bencher::iter` with a
//! simple median-of-samples timer instead of criterion's full statistical
//! machinery. Good enough to keep `cargo bench` targets compiling and to give
//! rough ns/iter numbers without network access to crates.io.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One benchmark's outcome, retrievable via [`take_results`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (group-qualified, e.g. `day_sim/baseline_full_day`).
    pub name: String,
    /// Median wall-clock time per iteration in nanoseconds.
    pub median_ns: u128,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every benchmark result recorded since the last call.
///
/// Real criterion exposes results only through its report files; this stub
/// keeps them in-process so bench binaries can emit machine-readable
/// summaries (e.g. `BENCH_perf.json`) without parsing stdout.
#[must_use]
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI hook; the stub has no CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_named(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op in the stub; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::with_capacity(samples), target: samples };
    f(&mut b);
    b.samples.sort();
    let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
    println!("bench {name:<40} median {:>12.1} ns/iter ({} samples)", median.as_nanos() as f64, b.samples.len());
    RESULTS.lock().unwrap().push(BenchResult {
        name: name.to_string(),
        median_ns: median.as_nanos(),
        samples: b.samples.len(),
    });
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per call up to the configured
    /// sample count (plus one untimed warm-up run).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        Criterion::default().sample_size(3).bench_function("probe", |b| {
            b.iter(|| calls += 1);
        });
        // one warm-up + three timed samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn results_are_recorded_and_drained() {
        Criterion::default().sample_size(2).bench_function("drain-probe", |b| b.iter(|| 1 + 1));
        let results = take_results();
        assert!(results.iter().any(|r| r.name == "drain-probe" && r.samples == 2));
        assert!(take_results().iter().all(|r| r.name != "drain-probe"));
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
