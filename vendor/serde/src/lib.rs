//! Offline stand-in for the `serde` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! simplified serialization framework under the same crate name. Instead of
//! serde's visitor-based zero-copy architecture, this stub round-trips
//! every value through an owned [`Value`] tree:
//!
//! - `Serialize` renders a value into a [`Value`];
//! - `Deserialize` reconstructs a value from a [`Value`];
//! - `serde_json` (also vendored) converts `Value` to/from JSON text.
//!
//! The derive macros (`serde_derive`, re-exported here behind the `derive`
//! feature like upstream) generate impls of these simplified traits with the
//! same external JSON shape real serde would produce for the workspace's
//! types: structs as maps, unit enum variants as strings, data-carrying
//! variants as one-entry maps, and `#[serde(from = "...", into = "...")]`
//! conversions. No workspace crate writes a manual `impl Serialize`/
//! `Deserialize`, so the trait-shape difference is invisible to them.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model every value serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers land here).
    Int(i64),
    /// Unsigned integer (non-negative JSON integers land here).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence / JSON array.
    Seq(Vec<Value>),
    /// Map / JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the entries if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Short type name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Standard "expected X, found Y" error.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts from a value tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization helpers, mirroring the `serde::de` module path.
pub mod de {
    pub use super::{DeError, Deserialize};

    /// Owned deserialization marker; in this stub every `Deserialize` type
    /// qualifies because the data model is always owned.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serialization helpers, mirroring the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}

/// Extracts and deserializes a named struct field (used by derive output).
///
/// # Errors
/// Returns [`DeError`] if `map` is not a map, the field is missing (unless
/// `T` is an `Option`), or the field fails to deserialize.
pub fn field<T: Deserialize>(map: &Value, name: &str) -> Result<T, DeError> {
    match map.get(name) {
        Some(v) => T::from_value(v)
            .map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::new(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )+};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )+};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError::new("integer out of range"))
        })
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| DeError::new("integer out of range"))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(move |_| DeError::new(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:expr; $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("tuple sequence", v))?;
                if s.len() != $len {
                    return Err(DeError::new(format!(
                        "expected tuple of length {}, found {}", $len, s.len()
                    )));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1; A: 0);
impl_tuple!(2; A: 0, B: 1);
impl_tuple!(3; A: 0, B: 1, C: 2);
impl_tuple!(4; A: 0, B: 1, C: 2, D: 3);

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize + Eq + Hash, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::UInt(3)).unwrap(), Some(3));
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let val = v.to_value();
        let back: Vec<(u32, f64)> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
        assert_eq!(f64::from_value(&Value::UInt(7)).unwrap(), 7.0);
        assert_eq!(i64::from_value(&Value::UInt(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn missing_field_reports_name() {
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        let err = field::<u32>(&m, "b").unwrap_err();
        assert!(err.to_string().contains('b'), "{err}");
        // Option fields tolerate absence.
        assert_eq!(field::<Option<u32>>(&m, "b").unwrap(), None);
    }
}
