//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! deterministic drop-in with the trait surface the crates actually use:
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`. `StdRng` is xoshiro256** seeded through
//! SplitMix64 — a different stream than upstream's ChaCha12, but every
//! consumer in this workspace treats the stream as an opaque deterministic
//! source, so only cross-version reproducibility (not in play here) differs.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step; used for seed expansion and as a standalone mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0,1)` for floats, uniform over all values for ints/bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty, mirroring `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (lo, hi, inclusive) = range.bounds();
        T::sample_range(self, lo, hi, inclusive)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait IntoUniformRange<T> {
    /// Returns `(low, high, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T: Copy> IntoUniformRange<T> for Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: Copy> IntoUniformRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        (*self.start(), *self.end(), true)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(lo < hi || (inclusive && lo <= hi), "gen_range: empty range");
        let u = f64::from_rng(rng);
        let v = lo + u * (hi - lo);
        // Guard against rounding up to `hi` in the half-open case.
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(lo < hi || (inclusive && lo <= hi), "gen_range: empty range");
        let u = f32::from_rng(rng);
        let v = lo + u * (hi - lo);
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            fn sample_range<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span_minus_one = if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    (hi as i128 - lo as i128) as u128
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    (hi as i128 - lo as i128 - 1) as u128
                };
                if span_minus_one == u128::from(u64::MAX) {
                    return (lo as i128 + i128::from(rng.next_u64())) as $t;
                }
                let span = span_minus_one as u64 + 1;
                // Rejection-free multiply-shift (Lemire); negligible bias is
                // acceptable for a simulation stub.
                let v = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (lo as i128 + i128::from(v)) as $t
            }
        }
    )+};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, so `s` is already safe.
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&b));
            let c = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(c > 0.0 && c < 1.0);
            let d = rng.gen_range(0..=1usize);
            assert!(d <= 1);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }
}
