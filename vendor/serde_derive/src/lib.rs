//! Offline stand-in for the `serde_derive` crate.
//!
//! Generates impls of the vendored `serde` stub's simplified `Serialize` /
//! `Deserialize` traits (an owned `Value`-tree data model) without `syn` /
//! `quote`, which are unavailable in this no-network build container. The
//! input item is parsed directly from the `proc_macro::TokenStream` and the
//! impl is emitted as source text.
//!
//! Supported shapes — exactly what the workspace uses:
//! - named-field structs (`struct S { a: T, ... }`) → JSON object
//! - newtype structs (`struct S(T);`) → transparent inner value
//! - tuple structs (`struct S(A, B);`) → JSON array
//! - unit structs → `null`
//! - enums with unit variants (→ `"Variant"`), newtype variants
//!   (→ `{"Variant": inner}`), tuple variants (→ `{"Variant": [a, b]}`)
//!   and struct variants (→ `{"Variant": {..}}`) — serde's externally
//!   tagged representation
//! - the container attribute `#[serde(from = "T", into = "T")]`
//!
//! Generics are not supported (no serialized workspace type is generic);
//! the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive stub: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(from = "...")]` type, if present.
    from_ty: Option<String>,
    /// `#[serde(into = "...")]` type, if present.
    into_ty: Option<String>,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut from_ty = None;
    let mut into_ty = None;

    // Attributes and visibility precede the `struct` / `enum` keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut from_ty, &mut into_ty);
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive stub: no struct/enum found in derive input"),
        }
    }

    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    let kind = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive stub: expected struct body, found {other:?}"),
        }
    };

    Item { name, kind, from_ty, into_ty }
}

/// Extracts `from` / `into` types out of a `#[serde(...)]` attribute body.
fn parse_serde_attr(attr: TokenStream, from_ty: &mut Option<String>, into_ty: &mut Option<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // some other attribute (doc, derive, default, ...)
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else { return };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let key = match &args[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (args.get(j + 1), args.get(j + 2))
        {
            if eq.as_char() == '=' {
                let raw = lit.to_string();
                let ty = raw.trim_matches('"').to_string();
                match key.as_str() {
                    "from" => *from_ty = Some(ty),
                    "into" => *into_ty = Some(ty),
                    other => panic!("serde_derive stub: unsupported serde attribute `{other}`"),
                }
                j += 3;
                continue;
            }
        }
        panic!("serde_derive stub: unsupported serde attribute form near `{key}`");
    }
}

/// Skips `#[...]` attributes at `*i`, returning the next token index.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 2; // '#' + bracketed group
    }
}

/// Skips `pub` / `pub(...)` visibility at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances past one type, stopping after the `,` that ends it (or at end).
/// Commas nested in `<...>` generics belong to the type and are skipped.
fn skip_type_and_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("serde_derive stub: expected field name, found {:?}", tokens.get(i));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field, found {other:?}"),
        }
        skip_type_and_comma(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        count += 1;
        skip_type_and_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma before end
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("serde_derive stub: expected variant name, found {:?}", tokens.get(i));
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(into) = &item.into_ty {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     let __repr: {into} = <Self as ::core::clone::Clone>::clone(self).into();\n\
                     ::serde::Serialize::to_value(&__repr)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                          ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => format!(
            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        Shape::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Serialize::to_value(__f0))]),"
        ),
        Shape::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let items: Vec<String> =
                binders.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
            format!(
                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Seq(::std::vec![{}]))]),",
                binders.join(", "),
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                          ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Map(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(from) = &item.from_ty {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                     let __repr: {from} = ::serde::Deserialize::from_value(__v)?;\n\
                     ::core::result::Result::Ok(\
                         <Self as ::core::convert::From<{from}>>::from(__repr))\n\
                 }}\n\
             }}"
        );
    }
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::field(__v, \"{f}\")?")).collect();
            format!("::core::result::Result::Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?")).collect();
            format!(
                "let __s = __v.as_seq()\
                     .ok_or_else(|| ::serde::DeError::expected(\"sequence\", __v))?;\n\
                 if __s.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"expected {n} fields for `{name}`, found {{}}\", \
                                        __s.len())));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => ::core::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| de_variant_arm(name, v))
        .collect();
    format!(
        "match __v {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                     ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
             }},\n\
             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {data}\n\
                     __other => ::core::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
                 }}\n\
             }}\n\
             __other => ::core::result::Result::Err(\
                 ::serde::DeError::expected(\"`{name}` variant\", __other)),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}

fn de_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => unreachable!("unit variants handled via the string arm"),
        Shape::Tuple(1) => format!(
            "\"{vname}\" => ::core::result::Result::Ok(\
                 {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?")).collect();
            format!(
                "\"{vname}\" => {{\n\
                     let __s = __inner.as_seq()\
                         .ok_or_else(|| ::serde::DeError::expected(\"sequence\", __inner))?;\n\
                     if __s.len() != {n} {{\n\
                         return ::core::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"expected {n} fields for `{name}::{vname}`, \
                                             found {{}}\", __s.len())));\n\
                     }}\n\
                     ::core::result::Result::Ok({name}::{vname}({}))\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::field(__inner, \"{f}\")?")).collect();
            format!(
                "\"{vname}\" => ::core::result::Result::Ok(\
                     {name}::{vname} {{ {} }}),",
                inits.join(", ")
            )
        }
    }
}
