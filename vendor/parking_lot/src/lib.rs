//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to the crates.io registry, so
//! the workspace vendors a minimal API-compatible subset of each external
//! dependency. This crate wraps `std::sync` primitives and strips lock
//! poisoning, which matches `parking_lot` semantics closely enough for the
//! workspace's usage (plain `lock()` / `into_inner()` with no poisoning
//! recovery paths).

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that, unlike `std::sync::Mutex`, does not poison.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
