//! Quickstart: train a Cooling Model, run the baseline and CoolAir All-ND
//! for a (sub-sampled) year in Newark, and compare the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use coolair::Version;
use coolair_sim::{run_annual, run_annual_with_model, AnnualConfig, SystemSpec};
use coolair_weather::Location;
use coolair_workload::TraceKind;

fn main() {
    let location = Location::newark();
    let cfg = AnnualConfig::default();

    println!("Training the Cooling Model on 45 days of Parasol monitoring data…");
    let model = coolair_sim::train_for_location(&location, &cfg);
    println!(
        "Learned models for {} regimes/transitions; recirculation ranking: {:?}\n",
        model.keys().count(),
        model.recirc_ranking()
    );

    println!("Simulating one year (first day of each week) in {}…", location.name());
    let baseline = run_annual(&SystemSpec::Baseline, &location, TraceKind::Facebook, &cfg);
    let coolair = run_annual_with_model(
        &SystemSpec::CoolAir(Version::AllNd),
        &location,
        TraceKind::Facebook,
        &cfg,
        Some(model),
    );

    println!("{:<22} {:>10} {:>10}", "metric", "Baseline", "All-ND");
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "avg worst range (°C)",
        baseline.avg_worst_range(),
        coolair.avg_worst_range()
    );
    println!(
        "{:<22} {:>10.2} {:>10.2}",
        "max worst range (°C)",
        baseline.max_worst_range(),
        coolair.max_worst_range()
    );
    println!(
        "{:<22} {:>10.3} {:>10.3}",
        "avg violation (°C)",
        baseline.avg_violation(),
        coolair.avg_violation()
    );
    println!("{:<22} {:>10.3} {:>10.3}", "PUE", baseline.pue(), coolair.pue());
    println!(
        "{:<22} {:>10.1} {:>10.1}",
        "cooling kWh (52 days)",
        baseline.cooling_kwh(),
        coolair.cooling_kwh()
    );
    println!(
        "{:<22} {:>10.1} {:>10.1}",
        "IT kWh (52 days)",
        baseline.it_kwh(),
        coolair.it_kwh()
    );
}
