//! The control plane end to end: start the daemon in-process, drive it
//! over real loopback sockets with the pure-std HTTP client, and drain.
//!
//! 1. bind `coolair-serve` on a free port with a store-backed executor,
//! 2. `GET /healthz` and `GET /version`,
//! 3. `POST /jobs` with a quick annual spec (the job id is the spec's
//!    content digest, so resubmission is idempotent),
//! 4. poll `GET /jobs/{id}` to completion,
//! 5. stream the raw artifact back via `GET /artifacts/{kind}/{hash}`,
//! 6. scrape `GET /metrics` (Prometheus text) and `POST /shutdown`.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::time::{Duration, Instant};

use coolair_bench::http_client::HttpClient;
use coolair_runner::Job;
use coolair_serve::{ServeConfig, Server};
use coolair_sim::jobs::{AnnualJob, KIND_ANNUAL_SUMMARY};
use coolair_sim::{AnnualConfig, SystemSpec};
use coolair_telemetry::Telemetry;
use coolair_weather::Location;
use coolair_workload::TraceKind;
use serde_json::JsonValue as Value;

fn main() {
    let store = std::env::temp_dir().join("coolair_serve_demo");
    let _ = std::fs::remove_dir_all(&store);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: Some(store.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, Telemetry::discard()).expect("bind");
    let addr = server.local_addr().expect("addr");
    println!("daemon on http://{addr}  (store: {})", store.display());

    std::thread::scope(|s| {
        s.spawn(|| server.run().expect("serve"));
        let mut client = HttpClient::connect(addr).expect("connect");

        let health = client.get("/healthz").expect("healthz");
        let version = client.get("/version").expect("version");
        println!("healthz  -> {}", String::from_utf8_lossy(&health.body).trim());
        println!("version  -> {}", String::from_utf8_lossy(&version.body).trim());

        let job = AnnualJob {
            system: SystemSpec::Baseline,
            location: Location::newark(),
            trace: TraceKind::Facebook,
            annual: AnnualConfig { stride: 180, ..AnnualConfig::quick() },
        };
        let id = job.digest().to_string();
        let accepted = client.post_json("/jobs", &job).expect("submit");
        println!("submit   -> {} {}", accepted.status, String::from_utf8_lossy(&accepted.body).trim());

        let deadline = Instant::now() + Duration::from_secs(120);
        let record = loop {
            let resp = client.get(&format!("/jobs/{id}")).expect("poll");
            let record: Value = serde_json::from_slice(&resp.body).expect("job record");
            match record.get("state") {
                Some(Value::Str(state)) if state == "done" => break record,
                Some(Value::Str(state)) if state == "failed" => panic!("job failed: {record:?}"),
                _ => {}
            }
            assert!(Instant::now() < deadline, "job did not finish");
            std::thread::sleep(Duration::from_millis(50));
        };
        let days = record
            .get("result")
            .and_then(|r| r.get("days"))
            .and_then(Value::as_seq)
            .map_or(0, <[Value]>::len);
        println!("job done -> id {id}, {days} simulated days in summary");

        let artifact = client
            .get(&format!("/artifacts/{KIND_ANNUAL_SUMMARY}/{id}"))
            .expect("artifact");
        println!(
            "artifact -> {} ({} bytes, chunked{})",
            artifact.status,
            artifact.body.len(),
            if artifact.header("transfer-encoding").is_some() { "" } else { "?" },
        );

        let metrics = client.get("/metrics").expect("metrics");
        let text = String::from_utf8_lossy(&metrics.body);
        println!("metrics  -> {} lines, e.g.:", text.lines().count());
        for line in text.lines().filter(|l| l.starts_with("serve_requests_total")).take(4) {
            println!("            {line}");
        }

        let drained = client.post_json("/shutdown", &()).expect("shutdown");
        println!("shutdown -> {}", String::from_utf8_lossy(&drained.body).trim());
    });
    println!("drained cleanly");
    let _ = std::fs::remove_dir_all(&store);
}
