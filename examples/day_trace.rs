//! Diagnostic: print a day-long minute trace for one system/location/day.
//!
//! ```sh
//! cargo run --release --example day_trace -- [allnd|energy|temperature|variation|baseline] [day] [location]
//! ```

use coolair::{CoolAir, CoolAirConfig, Version};
use coolair_sim::{train_for_location, AnnualConfig, SimConfig, SimController, Simulation};
use coolair_thermal::{PlantConfig, TksConfig, TksController};
use coolair_weather::{Forecaster, Location, TmySeries};
use coolair_workload::{facebook_trace, Cluster, ClusterConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map_or("allnd", String::as_str);
    let day: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(14);
    let location = match args.get(3).map(String::as_str) {
        Some("chad") => Location::chad(),
        Some("santiago") => Location::santiago(),
        Some("iceland") => Location::iceland(),
        Some("singapore") => Location::singapore(),
        _ => Location::newark(),
    };
    let cfg = AnnualConfig::default();
    let tmy = TmySeries::generate(&location, cfg.weather_seed);

    let controller = if which == "baseline" {
        SimController::Baseline(TksController::new(TksConfig::baseline()))
    } else {
        let version = match which {
            "energy" => Version::Energy,
            "temperature" => Version::Temperature,
            "variation" => Version::Variation,
            _ => Version::AllNd,
        };
        let model = train_for_location(&location, &cfg);
        SimController::CoolAir(Box::new(CoolAir::new(
            version,
            CoolAirConfig::default(),
            model,
            Forecaster::perfect(tmy.clone()),
            coolair_thermal::Infrastructure::Smooth,
        )))
    };
    let plant = if which == "baseline" { PlantConfig::parasol() } else { PlantConfig::smooth() };

    let mut sim = Simulation::new(
        controller,
        plant,
        Cluster::new(ClusterConfig::parasol()),
        tmy,
        SimConfig { record_minutes: true, ..SimConfig::default() },
    );
    let out = sim.run_day(day, facebook_trace(cfg.trace_seed).jobs_for_day(day));
    println!("day {day} ({which}): worst range {:.2}°C  cooling {:.2} kWh", out.record.worst_range(), out.record.cooling_kwh);
    println!("{:>5} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>7} {:>6} {:>14}", "min", "out", "maxin", "minin", "rh", "fan%", "comp%", "coolW", "act", "band");
    for (i, m) in out.minutes.iter().enumerate() {
        if i % 15 == 0 {
            println!(
                "{:>5} {:>7.1} {:>7.1} {:>7.1} {:>6.0} {:>6.0} {:>6.0} {:>7.0} {:>6} {:>14}",
                i, m.outside, m.max_inlet, m.min_inlet, m.rh, m.fan_pct, m.compressor_pct,
                m.cooling_w, m.active_servers,
                m.band.map_or("-".into(), |(lo, hi)| format!("[{lo:.1},{hi:.1}]")),
            );
        }
    }
}
