//! Resumable world sweep: kill, resume, and warm-cache rerun.
//!
//! Runs a 12-location world sweep through the `coolair-runner` executor
//! three times against the same artifact store:
//!
//! 1. an uninterrupted reference run,
//! 2. a "killed" run — its journal is truncated mid-campaign and the
//!    un-journaled artifacts deleted, then the sweep is resumed with the
//!    journal replayed — whose output must be byte-identical to (1),
//! 3. a warm rerun, served entirely from the artifact cache with zero
//!    training jobs executed.
//!
//! ```sh
//! cargo run --release --example resumable_sweep
//! ```

use std::path::{Path, PathBuf};

use coolair_runner::{Executor, ExecutorConfig, ProgressSnapshot};
use coolair_sim::jobs::KIND_COOLING_MODEL;
use coolair_sim::{sweep_locations, AnnualConfig, SweepReport};
use coolair_telemetry::Telemetry;
use coolair_weather::WorldGrid;

fn sweep(dir: &Path, resume: bool) -> (SweepReport, ProgressSnapshot, u64) {
    let telemetry = Telemetry::discard();
    let exec = Executor::new(ExecutorConfig {
        store_dir: Some(dir.to_path_buf()),
        resume,
        telemetry: telemetry.clone(),
        ..ExecutorConfig::default()
    })
    .expect("open store");
    let grid = WorldGrid::with_count(12);
    let annual = AnnualConfig { stride: 90, ..AnnualConfig::quick() };
    let report = sweep_locations(grid.locations(), &annual, &exec);
    assert!(report.failures.is_empty(), "sweep failed: {:?}", report.failures);
    let trained = telemetry.metrics().counter(&format!("runner.run.{KIND_COOLING_MODEL}"));
    (report, exec.progress(), trained)
}

fn points_json(report: &SweepReport) -> String {
    serde_json::to_string(&report.points).expect("serialise points")
}

/// Simulates a mid-campaign kill: keep only the first half of the
/// journal, and delete every artifact the kept prefix does not mention.
fn kill_midway(dir: &Path) -> (usize, usize) {
    let journal = dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    let mut kept = lines[..keep].join("\n");
    kept.push('\n');
    std::fs::write(&journal, kept.as_bytes()).expect("truncate journal");

    let referenced: std::collections::HashSet<(String, String)> =
        coolair_runner::replay(&kept).into_iter().map(|e| (e.kind, e.digest)).collect();
    let mut deleted = 0;
    for kind_dir in std::fs::read_dir(dir.join("artifacts")).expect("artifacts dir") {
        let kind_dir = kind_dir.unwrap().path();
        let kind = kind_dir.file_name().unwrap().to_str().unwrap().to_string();
        for artifact in std::fs::read_dir(&kind_dir).unwrap() {
            let path = artifact.unwrap().path();
            let digest = path.file_stem().unwrap().to_str().unwrap().to_string();
            if !referenced.contains(&(kind.clone(), digest)) {
                std::fs::remove_file(&path).unwrap();
                deleted += 1;
            }
        }
    }
    (keep, deleted)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("coolair_resumable_sweep").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    println!("== 1. uninterrupted reference sweep (12 locations) ==");
    let reference_dir = fresh_dir("reference");
    let (reference, progress, trained) = sweep(&reference_dir, false);
    println!(
        "   {} points, {} jobs executed, {} models trained\n",
        reference.points.len(),
        progress.done,
        trained
    );

    println!("== 2. killed mid-campaign, then resumed ==");
    let killed_dir = fresh_dir("killed");
    let (_, progress, _) = sweep(&killed_dir, false);
    let total = progress.done;
    let (kept, deleted) = kill_midway(&killed_dir);
    println!("   simulated kill: journal truncated to {kept}/{total} entries, {deleted} artifacts deleted");
    let (resumed, progress, _) = sweep(&killed_dir, true);
    println!(
        "   resumed: {} jobs replayed from the journal, {} re-executed",
        progress.resumed, progress.done
    );
    assert_eq!(
        points_json(&resumed),
        points_json(&reference),
        "resumed output must be byte-identical to the uninterrupted run"
    );
    println!("   resumed output is byte-identical to the reference ✔\n");

    println!("== 3. warm-cache rerun on the reference store ==");
    let (warm, progress, trained) = sweep(&reference_dir, false);
    assert_eq!(points_json(&warm), points_json(&reference));
    assert_eq!(trained, 0);
    println!(
        "   {} cache hits, {} jobs executed, {} models trained ({:.0}% served from cache) ✔",
        progress.cache_hits,
        progress.done,
        trained,
        progress.cache_hit_rate() * 100.0
    );
}
