//! Deferrable batch workloads: what temporal scheduling does to job start
//! times, temperature variation, and cooling energy on one day.
//!
//! Runs the same deferrable Facebook day (6-hour start deadlines) under
//! All-ND (no deferral), All-DEF (band-aware deferral), and Energy-DEF
//! (coolest-hours deferral, as prior energy-driven work) and prints the
//! hourly distribution of busy servers plus the §5.2 headline metrics.
//!
//! ```sh
//! cargo run --release --example deferrable_batch
//! ```

use coolair::{CoolAir, CoolAirConfig, Version};
use coolair_sim::{train_for_location, AnnualConfig, SimConfig, SimController, Simulation};
use coolair_thermal::{Infrastructure, PlantConfig};
use coolair_weather::{Forecaster, Location, TmySeries};
use coolair_workload::{facebook_trace, Cluster, ClusterConfig};

fn main() {
    let location = Location::newark();
    let cfg = AnnualConfig::default();
    let tmy = TmySeries::generate(&location, cfg.weather_seed);
    eprintln!("training the Cooling Model…");
    let model = train_for_location(&location, &cfg);
    let trace = facebook_trace(cfg.trace_seed)
        .with_deadlines(CoolAirConfig::default().deferral_deadline);
    let day = 196; // mid-July: warm afternoons, cool nights

    let mut rows = Vec::new();
    for version in [Version::AllNd, Version::AllDef, Version::EnergyDef] {
        let mut sim = Simulation::new(
            SimController::CoolAir(Box::new(CoolAir::new(
                version,
                CoolAirConfig::default(),
                model.clone(),
                Forecaster::perfect(tmy.clone()),
                Infrastructure::Smooth,
            ))),
            PlantConfig::smooth(),
            Cluster::new(ClusterConfig::parasol()),
            tmy.clone(),
            SimConfig { record_minutes: true, ..SimConfig::default() },
        );
        let out = sim.run_day(day, trace.jobs_for_day(day));
        let hourly_busy: Vec<usize> = (0..24)
            .map(|h| {
                out.minutes[h * 60..(h + 1) * 60]
                    .iter()
                    .map(|m| m.active_servers)
                    .sum::<usize>()
                    / 60
            })
            .collect();
        rows.push((version, out, hourly_busy));
    }

    println!("hour-by-hour active servers (deferral shifts load in time):");
    print!("{:<12}", "hour");
    for h in 0..24 {
        print!("{h:>4}");
    }
    println!();
    for (version, _, hourly) in &rows {
        print!("{:<12}", version.name());
        for v in hourly {
            print!("{v:>4}");
        }
        println!();
    }

    println!(
        "\n{:<12} {:>12} {:>12} {:>14} {:>12}",
        "version", "worst range", "cooling kWh", "late starts", "completed"
    );
    for (version, out, _) in &rows {
        println!(
            "{:<12} {:>11.1}° {:>12.2} {:>14} {:>12}",
            version.name(),
            out.record.worst_range(),
            out.record.cooling_kwh,
            "-", // per-day late starts are tracked by the cluster across days
            out.record.jobs_completed,
        );
    }
    println!("\n§5.2 expectation: Energy-DEF trades wider temperature ranges for cooling");
    println!("energy; All-DEF stays close to All-ND (it skips scheduling on hard days).");
}
