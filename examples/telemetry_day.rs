//! Telemetry tour: run a supervised summer day with a seeded fault plan
//! and an in-memory telemetry bus attached, then walk through what the
//! bus captured — the event stream, the metrics registry, and the
//! wall-clock profile of the hot paths.
//!
//! ```sh
//! cargo run --release --example telemetry_day -- [day] [location]
//! ```
//!
//! For a persistent JSONL artifact of the same information use the CLI:
//! `coolair-cli run --system supervised --trace out.jsonl` followed by
//! `coolair-cli report out.jsonl`.

use coolair::Version;
use coolair_sim::{
    run_days_traced, train_for_location, AnnualConfig, FaultPlan, FaultRates, SystemSpec,
};
use coolair_telemetry::{Event, Telemetry};
use coolair_weather::Location;
use coolair_workload::TraceKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let day: u64 = args.first().and_then(|d| d.parse().ok()).unwrap_or(150);
    let location = match args.get(1).map(String::as_str) {
        Some("chad") => Location::chad(),
        Some("singapore") => Location::singapore(),
        _ => Location::newark(),
    };

    let mut cfg = AnnualConfig::quick();
    cfg.faults = FaultPlan::random(4242, &FaultRates::scaled(2.0), &[day], 4);
    let model = train_for_location(&location, &cfg);

    let bus = Telemetry::memory();
    let summary = run_days_traced(
        &SystemSpec::Supervised(Version::AllNd),
        &location,
        TraceKind::Facebook,
        &cfg,
        Some(model),
        &[day],
        bus.clone(),
    );

    println!(
        "Supervised All-ND @ {}, day {day}: avg violation {:.3} °C, PUE {:.3}\n",
        location.name(),
        summary.avg_violation(),
        summary.pue()
    );

    // 1. The event stream: every decision and transition, SimTime-stamped.
    let events = bus.take_events();
    println!("captured {} events; transitions and incidents:", events.len());
    for e in &events {
        match e {
            Event::RegimeChange { time, from, to } => {
                println!("  [{:6}s] regime {from} -> {to}", time.as_secs() % 86_400);
            }
            Event::TksModeFlip { time, from, to } => {
                println!("  [{:6}s] tks {from} -> {to}", time.as_secs() % 86_400);
            }
            Event::SupervisorTransition { time, from, to } => {
                println!("  [{:6}s] supervisor {from} -> {to}", time.as_secs() % 86_400);
            }
            Event::FailsafeEngaged { time, max_inlet } => {
                println!("  [{:6}s] FAILSAFE at {max_inlet:.1} °C", time.as_secs() % 86_400);
            }
            Event::FaultActivated { time, kind } => {
                println!("  [{:6}s] fault on: {kind}", time.as_secs() % 86_400);
            }
            Event::FaultCleared { time, kind } => {
                println!("  [{:6}s] fault off: {kind}", time.as_secs() % 86_400);
            }
            _ => {}
        }
    }

    // 2. The metrics registry: per-kind counters plus the inlet histogram.
    let metrics = bus.metrics();
    println!("\ncounters:");
    for (name, value) in &metrics.counters {
        println!("  {name:<32} {value}");
    }
    if let Some(h) = metrics.histograms.get("inlet_c") {
        println!(
            "\ninlet °C: n={} mean={:.2} p50<={:.1} p99<={:.1} max={:.2}",
            h.count,
            h.mean(),
            h.quantile(0.50).unwrap_or(0.0),
            h.quantile(0.99).unwrap_or(0.0),
            h.max.unwrap_or(0.0),
        );
    }

    // 3. The wall-clock profile (not part of the deterministic trace).
    println!("\nhot paths:");
    for (scope, s) in &bus.profile().scopes {
        println!(
            "  {scope:<24} {:>7} calls, mean {:>9.1} us",
            s.calls,
            s.mean_ns() as f64 / 1e3
        );
    }
}
