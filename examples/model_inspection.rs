//! Inspect what the Cooling Modeler learned: per-regime model inventory,
//! the fan power law recovered by M5P, the recirculation ranking, and
//! held-out prediction accuracy.
//!
//! ```sh
//! cargo run --release --example model_inspection
//! ```

use coolair::{train_cooling_model, TrainingConfig};
use coolair_sim::model_error_cdfs;
use coolair_thermal::{cooling_power, CoolingRegime, Infrastructure, ModelKey, RegimeClass};
use coolair_units::FanSpeed;
use coolair_weather::{Location, TmySeries};

fn main() {
    let location = Location::newark();
    let tmy = TmySeries::generate(&location, 42);
    eprintln!("running the 45-day data-collection campaign…");
    let model = train_cooling_model(&tmy, &TrainingConfig::default());

    println!("=== learned model inventory ===");
    let mut keys: Vec<ModelKey> = model.keys().collect();
    keys.sort_by_key(|k| format!("{k}"));
    for key in keys {
        let m = model.models_for(key).expect("listed key");
        println!("{key:>28}: {} training rows", m.samples);
    }

    println!("\n=== recirculation ranking (most recirculation-prone first) ===");
    println!("{:?}", model.recirc_ranking());

    println!("\n=== learned fan power law vs ground truth (M5P over fan speed) ===");
    println!("{:>6} {:>12} {:>12}", "fan%", "learned W", "true W");
    for pct in [15.0, 25.0, 40.0, 60.0, 80.0, 100.0] {
        let learned = model.predict_power(RegimeClass::FreeCooling, pct / 100.0, 0.0);
        let truth = cooling_power(
            CoolingRegime::free_cooling(FanSpeed::from_percent(pct).expect("static")),
            Infrastructure::Parasol,
        );
        println!("{pct:>6.0} {learned:>12.1} {:>12.1}", truth.value());
    }

    println!("\n=== held-out accuracy (two days outside the training window) ===");
    let report = model_error_cdfs(&model, &tmy, &[120, 170], 3);
    println!(
        "2-min predictions:  {:.1}% within 1°C (median {:.2}°C)",
        report.two_min.fraction_within(1.0) * 100.0,
        report.two_min.median()
    );
    println!(
        "10-min predictions: {:.1}% within 1°C (median {:.2}°C)",
        report.ten_min.fraction_within(1.0) * 100.0,
        report.ten_min.median()
    );
    println!(
        "humidity:           {:.1}% within 5%RH",
        report.humidity.fraction_within(5.0) * 100.0
    );
}
