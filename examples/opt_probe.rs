//! Diagnostic: evaluate every candidate regime at a given plant state.

use coolair::manager::band::TempBand;
use coolair::manager::predictor::predict_regime;
use coolair::manager::utility::utility_penalty;
use coolair::{CoolAirConfig, Version};
use coolair_sim::{train_for_location, AnnualConfig};
use coolair_thermal::{CoolingRegime, Infrastructure, SensorReadings};
use coolair_units::{psychro, Celsius, RelativeHumidity, SimTime, Watts};
use coolair_weather::Location;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let t_in: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40.0);
    let t_out: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);

    let location = Location::santiago();
    let model = train_for_location(&location, &AnnualConfig::default());
    let cfg = CoolAirConfig::default();
    let profile = Version::Energy.utility(&cfg);

    let temp = Celsius::new(t_in);
    let out = Celsius::new(t_out);
    let r = SensorReadings {
        time: SimTime::EPOCH,
        outside_temp: out,
        outside_rh: RelativeHumidity::new(60.0),
        outside_abs: psychro::absolute_humidity(out, RelativeHumidity::new(60.0)),
        pod_inlets: vec![temp; 4],
        cold_aisle_rh: RelativeHumidity::new(10.0),
        cold_aisle_abs: psychro::absolute_humidity(temp, RelativeHumidity::new(10.0)),
        hot_aisle: Celsius::new(t_in + 10.0),
        disk_temps: vec![Celsius::new(t_in + 10.0); 4],
        regime: CoolingRegime::Closed,
        cooling_power: Watts::ZERO,
        it_power: Watts::new(1500.0),
        active_fraction: 1.0,
    };
    let band = TempBand::new(Celsius::new(13.5), Celsius::new(18.5));
    let _ = band;
    println!("state: in={t_in} out={t_out} util=1.0 (Energy profile, MaxOnly)");
    for c in Infrastructure::Smooth.candidate_regimes() {
        let p = predict_regime(&model, &cfg, &r, None, c, Infrastructure::Smooth);
        let pen = utility_penalty(&profile, &cfg, None, &p, &[true; 4], c);
        println!(
            "{c:>8}: pen={pen:8.2} final={:6.2} max={:6.2} delta={:5.2} e={:.3}",
            p.final_temps[0].value(),
            p.max_temps[0].value(),
            p.deltas[0],
            p.energy_kwh
        );
    }
}
