//! Scripted fault drill: one summer day, a fixed schedule of sensor,
//! actuator and forecast failures, and a side-by-side of unsupervised
//! All-ND against the degraded-mode supervisor.
//!
//! ```sh
//! cargo run --release --example fault_drill -- [day] [location]
//! ```
//!
//! The drill schedule (times local to the drill day):
//! - 02:00–08:00  pod 0 inlet sensor stuck at 24.0 °C
//! - 09:00–12:00  pod 1 inlet sensor drifts +2 °C per hour
//! - 13:00–16:00  AC compressor lockout (commands degrade to fan-only)
//! - all day      forecast service outage (yesterday's weather served)

use coolair::{CoolAir, CoolAirConfig, SupervisedCoolAir, SupervisorConfig, Version};
use coolair_sim::{
    train_for_location, ActuatorFault, AnnualConfig, FaultKind, FaultPlan, FaultWindow,
    SensorFault, SimConfig, SimController, Simulation,
};
use coolair_thermal::PlantConfig;
use coolair_units::{SimDuration, SimTime};
use coolair_weather::{Forecaster, GlitchKind, Location, TmySeries};
use coolair_workload::{facebook_trace, Cluster, ClusterConfig};

fn drill_plan(day: u64) -> FaultPlan {
    let at = |h: u64| SimTime::from_days(day) + SimDuration::from_secs(h * 3600);
    FaultPlan::none()
        .with_window(FaultWindow {
            start: at(2),
            end: at(8),
            kind: FaultKind::Sensor { pod: 0, fault: SensorFault::StuckAt(24.0) },
        })
        .with_window(FaultWindow {
            start: at(9),
            end: at(12),
            kind: FaultKind::Sensor { pod: 1, fault: SensorFault::Drift { c_per_hour: 2.0 } },
        })
        .with_window(FaultWindow {
            start: at(13),
            end: at(16),
            kind: FaultKind::Actuator(ActuatorFault::AcLockout),
        })
        .with_window(FaultWindow {
            start: SimTime::from_days(day),
            end: SimTime::from_days(day + 1),
            kind: FaultKind::Forecast(GlitchKind::Outage),
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let day: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(181);
    let location = match args.get(2).map(String::as_str) {
        Some("chad") => Location::chad(),
        Some("santiago") => Location::santiago(),
        Some("iceland") => Location::iceland(),
        Some("singapore") => Location::singapore(),
        _ => Location::newark(),
    };
    let cfg = AnnualConfig::default();
    let tmy = TmySeries::generate(&location, cfg.weather_seed);
    let model = train_for_location(&location, &cfg);
    let plan = drill_plan(day);

    println!("fault drill: {} day {day}", location.name());
    for w in plan.windows() {
        let h = |t: SimTime| (t.as_secs() % 86_400) / 3600;
        let end_h = if h(w.end) == 0 { 24 } else { h(w.end) };
        println!("  {:02}:00-{end_h:02}:00  {:?}", h(w.start), w.kind);
    }

    let run = |supervised: bool| {
        let inner = CoolAir::new(
            Version::AllNd,
            CoolAirConfig::default(),
            model.clone(),
            Forecaster::new(tmy.clone(), cfg.forecast_error, cfg.weather_seed)
                .with_glitches(plan.forecast_glitches()),
            coolair_thermal::Infrastructure::Smooth,
        );
        let controller = if supervised {
            SimController::Supervised(Box::new(SupervisedCoolAir::new(
                inner,
                SupervisorConfig::default(),
            )))
        } else {
            SimController::CoolAir(Box::new(inner))
        };
        let mut sim = Simulation::new(
            controller,
            PlantConfig::smooth(),
            Cluster::new(ClusterConfig::parasol()),
            tmy.clone(),
            SimConfig { record_minutes: true, ..SimConfig::default() },
        );
        sim.set_fault_plan(plan.clone());
        sim.run_day(day, facebook_trace(cfg.trace_seed).jobs_for_day(day))
    };

    let plain = run(false);
    let drilled = run(true);

    println!("\n{:<32} {:>12} {:>12}", "", "All-ND", "All-ND+SV");
    let row = |label: &str, a: String, b: String| println!("{label:<32} {a:>12} {b:>12}");
    row(
        "violation (°C·min over limit)",
        format!("{:.0}", plain.record.violation_sum),
        format!("{:.0}", drilled.record.violation_sum),
    );
    row(
        "max inlet (°C)",
        format!("{:.1}", plain.record.sensor_max.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))),
        format!("{:.1}", drilled.record.sensor_max.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))),
    );
    row(
        "cooling energy (kWh)",
        format!("{:.1}", plain.record.cooling_kwh),
        format!("{:.1}", drilled.record.cooling_kwh),
    );
    row(
        "minutes with a fault active",
        plain.record.fault_minutes.to_string(),
        drilled.record.fault_minutes.to_string(),
    );
    row(
        "minutes in a degraded mode",
        plain.record.degraded_minutes.to_string(),
        drilled.record.degraded_minutes.to_string(),
    );
    row(
        "minutes failsafe engaged",
        plain.record.failsafe_minutes.to_string(),
        drilled.record.failsafe_minutes.to_string(),
    );
    row(
        "mode/failsafe transitions",
        plain.record.fallback_transitions.to_string(),
        drilled.record.fallback_transitions.to_string(),
    );
    row(
        "imputed sensor readings",
        plain.record.imputed_readings.to_string(),
        drilled.record.imputed_readings.to_string(),
    );

    println!("\nsupervised minute trace (every 30 min):");
    println!(
        "{:>5} {:>7} {:>7} {:>6} {:>6} {:>7}",
        "min", "out", "maxin", "fan%", "comp%", "coolW"
    );
    for (i, m) in drilled.minutes.iter().enumerate() {
        if i % 30 == 0 {
            println!(
                "{:>5} {:>7.1} {:>7.1} {:>6.0} {:>6.0} {:>7.0}",
                i, m.outside, m.max_inlet, m.fan_pct, m.compressor_pct, m.cooling_w
            );
        }
    }
}
