//! Site-selection study: how much does CoolAir change the free-cooling
//! calculus at candidate datacenter sites?
//!
//! The paper's motivation: "for latency reasons or other restrictions on
//! siting… it may be desirable to build free-cooled datacenters at such
//! locations" — locations with hot or highly variable outside temperatures.
//! This example evaluates an eleven-site shortlist (the paper's five study
//! locations plus six more world cities) and reports, for each, the
//! baseline's exposure (violations, daily ranges, PUE) and what All-ND buys.
//!
//! ```sh
//! cargo run --release --example site_selection
//! ```

use coolair::Version;
use coolair_sim::{run_annual, run_annual_with_model, train_for_location, AnnualConfig, SystemSpec};
use coolair_weather::Location;
use coolair_workload::TraceKind;

fn main() {
    // A fast year (bi-weekly sampling) keeps the example interactive.
    let cfg = AnnualConfig { stride: 14, ..AnnualConfig::default() };

    let candidates = Location::extended_set();
    println!(
        "{:<12} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>10}",
        "site", "b.viol", "b.maxR", "b.PUE", "c.viol", "c.maxR", "c.PUE", "verdict"
    );

    for site in candidates {
        eprintln!("evaluating {}…", site.name());
        let baseline = run_annual(&SystemSpec::Baseline, &site, TraceKind::Facebook, &cfg);
        let model = train_for_location(&site, &cfg);
        let coolair = run_annual_with_model(
            &SystemSpec::CoolAir(Version::AllNd),
            &site,
            TraceKind::Facebook,
            &cfg,
            Some(model),
        );

        // A simple site score: a free-cooled datacenter is viable when
        // CoolAir keeps violations negligible, halves exposure to daily
        // swings where they are large, and keeps PUE within budget.
        let verdict = if coolair.avg_violation() > 0.5 {
            "too hot"
        } else if coolair.pue() > 1.35 {
            "chiller-bound"
        } else if baseline.max_worst_range() - coolair.max_worst_range() > 4.0 {
            "CoolAir win"
        } else {
            "viable"
        };

        println!(
            "{:<12} {:>8.2} {:>8.1} {:>8.3} | {:>8.2} {:>8.1} {:>8.3} | {:>10}",
            site.name(),
            baseline.avg_violation(),
            baseline.max_worst_range(),
            baseline.pue(),
            coolair.avg_violation(),
            coolair.max_worst_range(),
            coolair.pue(),
            verdict
        );
    }

    println!("\nColumns: b.* = baseline (extended TKS), c.* = CoolAir All-ND;");
    println!("viol = avg °C above 30°C per reading; maxR = worst daily range over the year.");
}
